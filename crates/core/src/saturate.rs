//! Two-phase incremental saturation (Section IV-A2) plus redundant
//! e-node pruning.

use std::sync::Arc;
use std::time::Duration;

use egraph::hash::{FxHashMap, FxHashSet};
use egraph::{
    BackoffScheduler, CancelToken, EGraph, Id, Iteration, Language, RuleProfile, Runner,
    SearchBackendKind, StopReason, Symbol,
};

use crate::convert::NetlistEGraph;
use crate::rules;
use crate::BoolLang;

/// Parameters for [`saturate`].
#[derive(Debug, Clone)]
pub struct SaturateParams {
    /// Iterations of the basic ruleset `R1` (paper default: 10).
    pub r1_iters: usize,
    /// Iterations of the identification ruleset `R2` (paper default: 3).
    pub r2_iters: usize,
    /// E-node limit for the `R2` phase (the overall cap).
    pub node_limit: usize,
    /// Growth factor limiting the `R1` expansion phase: `R1` may grow
    /// the e-graph to at most `r1_growth ×` its initial node count
    /// (still capped by `node_limit`). Keeping `R1` compact leaves the
    /// identification phase `R2` room to work — `R2` dominates
    /// reasoning quality (paper RQ1).
    pub r1_growth: f64,
    /// Wall-clock limit across both phases (`R1` gets a quarter).
    pub time_limit: Duration,
    /// Use the lightweight `R1` subset (for large benchmarks).
    pub lightweight: bool,
    /// Backoff scheduler match limit.
    pub match_limit: usize,
    /// Prune redundant (commuted-duplicate) e-nodes after saturation.
    pub prune: bool,
    /// Threads the per-iteration rule search fans out across in both
    /// phases (`1` = serial, the determinism oracle; `0` = one per
    /// available CPU). Any value yields byte-identical results — match
    /// sets are merged in rule-index order before the apply phase — so
    /// this knob is excluded from cache-key fingerprints, like the
    /// cancel token.
    pub search_threads: usize,
    /// Drive each iteration's search through the shared multi-pattern
    /// trie instead of one VM program per rule.
    ///
    /// Deprecated alias (since the search-backend refactor; will be
    /// removed one release later): `false` overrides
    /// [`SaturateParams::search_backend`] to
    /// [`SearchBackendKind::PerPatternVm`] — see
    /// [`SaturateParams::effective_backend`]. Leave `true` (the
    /// default) and set `search_backend` instead.
    pub shared_search: bool,
    /// The e-matching strategy for both phases (default
    /// [`SearchBackendKind::SharedTrie`]). Every backend yields
    /// byte-identical results — match sets are proven equal by the
    /// differential harness — so this knob is excluded from cache-key
    /// fingerprints, like `search_threads`. The alternatives exist for
    /// performance comparisons (`satbench --compare-backends`) and
    /// differential baselines.
    pub search_backend: SearchBackendKind,
    /// Cooperative cancellation token checked by both saturation
    /// phases. Defaults to a fresh (never-cancelled) token; clone a
    /// shared token in to make the run externally killable.
    pub cancel: CancelToken,
}

impl Default for SaturateParams {
    fn default() -> Self {
        Self {
            r1_iters: 10,
            r2_iters: 3,
            node_limit: 100_000,
            r1_growth: 12.0,
            time_limit: Duration::from_secs(60),
            lightweight: false,
            match_limit: 2_000,
            prune: true,
            search_threads: 1,
            shared_search: true,
            search_backend: SearchBackendKind::default(),
            cancel: CancelToken::new(),
        }
    }
}

impl SaturateParams {
    /// A small configuration for unit tests and tiny netlists.
    pub fn small() -> Self {
        Self {
            node_limit: 20_000,
            time_limit: Duration::from_secs(10),
            match_limit: 500,
            ..Self::default()
        }
    }

    /// The effectively-unbounded time limit installed by
    /// [`SaturateParams::without_time_limit`] (one year; large enough
    /// to never bind, small enough that the `/4`–`×3/4` phase split
    /// cannot overflow).
    pub const UNBOUNDED_TIME: Duration = Duration::from_secs(365 * 24 * 3600);

    /// Disables the wall-clock limit, leaving iteration and node
    /// limits as the only stopping criteria.
    ///
    /// Wall-clock stops are inherently nondeterministic — the same
    /// netlist can yield different e-graphs depending on machine load,
    /// which breaks result caching and concurrent-vs-serial
    /// reproducibility. Service deployments should bound runtime with
    /// per-job deadlines (cooperative cancellation) instead and keep
    /// saturation itself deterministic.
    pub fn without_time_limit(mut self) -> Self {
        self.time_limit = Self::UNBOUNDED_TIME;
        self
    }

    /// Sets [`SaturateParams::search_threads`] (`1` = serial, `0` =
    /// one per available CPU). Never changes results — only how many
    /// cores the search phase uses.
    pub fn with_search_threads(mut self, threads: usize) -> Self {
        self.search_threads = threads;
        self
    }

    /// Sets [`SaturateParams::shared_search`].
    ///
    /// Deprecated alias (since the search-backend refactor; will be
    /// removed one release later): forwards to
    /// [`SaturateParams::with_search_backend`] with
    /// [`SearchBackendKind::SharedTrie`] (`true`) or
    /// [`SearchBackendKind::PerPatternVm`] (`false`), preserving the
    /// old knob's behavior byte for byte.
    pub fn with_shared_search(self, enabled: bool) -> Self {
        self.with_search_backend(if enabled {
            SearchBackendKind::SharedTrie
        } else {
            SearchBackendKind::PerPatternVm
        })
    }

    /// Sets [`SaturateParams::search_backend`] (and keeps the
    /// deprecated `shared_search` alias consistent with it). Never
    /// changes results — only which e-matching strategy finds them.
    pub fn with_search_backend(mut self, backend: SearchBackendKind) -> Self {
        self.search_backend = backend;
        self.shared_search = backend != SearchBackendKind::PerPatternVm;
        self
    }

    /// The backend the run will actually use: `search_backend`, unless
    /// the deprecated `shared_search = false` escape hatch demands the
    /// per-pattern VM (callers constructing params literally, without
    /// the builders, keep their historical behavior).
    pub fn effective_backend(&self) -> SearchBackendKind {
        if !self.shared_search {
            SearchBackendKind::PerPatternVm
        } else {
            self.search_backend
        }
    }
}

/// Statistics from a saturation run.
#[derive(Debug, Clone)]
pub struct SaturationStats {
    /// E-nodes after the `R1` phase.
    pub nodes_after_r1: usize,
    /// E-nodes after the `R2` phase.
    pub nodes_after_r2: usize,
    /// E-classes after both phases.
    pub classes: usize,
    /// Why the `R1` phase stopped.
    pub r1_stop: StopReason,
    /// Why the `R2` phase stopped.
    pub r2_stop: StopReason,
    /// `R1` iterations actually run.
    pub r1_iterations: usize,
    /// `R2` iterations actually run.
    pub r2_iterations: usize,
    /// Redundant e-nodes pruned.
    pub pruned: usize,
    /// Time spent in the e-matching search phase (the parallel
    /// fan-out only), summed over all iterations of both phases.
    pub search_time: Duration,
    /// Time spent in the serial merge that demultiplexes and
    /// bookkeeps per-rule match sets after each search fan-out,
    /// summed over all iterations. Reported separately so
    /// `search_time` stays an honest measure of matching work.
    pub merge_time: Duration,
    /// Time spent applying matches, summed over all iterations.
    pub apply_time: Duration,
    /// Time spent rebuilding (congruence repair), summed over all
    /// iterations.
    pub rebuild_time: Duration,
    /// Time the search backend spent (re)building shared relations,
    /// summed over all iterations of both phases. Zero for backends
    /// without a build step; a subset of `search_time`.
    pub relation_build_time: Duration,
    /// Total substitutions found by the searchers across both phases.
    pub total_matches: usize,
    /// Per-rule accounting merged across both phases, sorted by rule
    /// name. Struct-only, like the wall-clock fields above: excluded
    /// from the canonical JSON document (per-rule timings are
    /// machine-dependent) and restored empty by `FromJson`.
    pub rules: Vec<RuleSummary>,
}

/// Per-rule totals from one saturation run (both phases merged).
#[derive(Debug, Clone, PartialEq)]
pub struct RuleSummary {
    /// The rule's name.
    pub name: String,
    /// Wall-clock time spent searching this rule.
    pub search_time: Duration,
    /// Substitutions the searcher yielded (post-scheduling).
    pub matches: usize,
    /// Applications that changed the e-graph.
    pub applications: usize,
}

/// Observer invoked after each completed saturation iteration with the
/// ruleset phase name (`"r1"` or `"r2"`), the zero-based iteration
/// index within that phase, and the iteration's statistics. Must be
/// `Send + Sync`: the service calls saturation from worker threads.
pub type IterationObserver = Arc<dyn Fn(&'static str, usize, &Iteration) + Send + Sync>;

impl SaturationStats {
    /// Returns `true` if either phase was stopped by cooperative
    /// cancellation.
    pub fn was_cancelled(&self) -> bool {
        self.r1_stop == StopReason::Cancelled || self.r2_stop == StopReason::Cancelled
    }
}

/// Runs BoolE's two-phase saturation on a netlist e-graph: first `R1`
/// expands the e-graph with equivalent Boolean forms, then `R2`
/// identifies XOR/MAJ structures on top of it; finally, redundant
/// commuted duplicates are pruned (Section IV-A2, optimizations 1–3).
pub fn saturate(net: NetlistEGraph, params: &SaturateParams) -> (NetlistEGraph, SaturationStats) {
    saturate_observed(net, params, None)
}

/// [`saturate`] with an optional per-iteration observer — the hook
/// telemetry event streams attach to. Passing `None` is exactly
/// [`saturate`]; the observer cannot influence the run, so attaching
/// one never changes the resulting e-graph or statistics.
pub fn saturate_observed(
    net: NetlistEGraph,
    params: &SaturateParams,
    observer: Option<IterationObserver>,
) -> (NetlistEGraph, SaturationStats) {
    let r1 = if params.lightweight {
        rules::r1_lightweight_rules()
    } else {
        rules::r1_rules()
    };
    let r2 = rules::r2_rules();

    let initial_nodes = net.egraph.total_number_of_nodes();
    let r1_node_limit = ((initial_nodes as f64 * params.r1_growth) as usize)
        .max(2_000)
        .min(params.node_limit);
    let mut runner1 = Runner::new(())
        .with_egraph(net.egraph)
        .with_iter_limit(params.r1_iters)
        .with_node_limit(r1_node_limit)
        .with_time_limit(params.time_limit / 4)
        .with_scheduler(BackoffScheduler::new(params.match_limit, 2))
        .with_search_threads(params.search_threads)
        .with_search_backend(params.effective_backend())
        .with_cancel_token(params.cancel.clone());
    if let Some(obs) = observer.clone() {
        runner1 = runner1.with_iteration_hook(move |i, it| obs("r1", i, it));
    }
    let runner1 = runner1.run(&r1);
    let nodes_after_r1 = runner1.egraph.total_number_of_nodes();
    let r1_stop = runner1.stop_reason.clone().expect("phase 1 ran");
    let r1_iterations = runner1.iterations.len();
    let mut search_time = Duration::ZERO;
    let mut merge_time = Duration::ZERO;
    let mut apply_time = Duration::ZERO;
    let mut rebuild_time = Duration::ZERO;
    let mut relation_build_time = Duration::ZERO;
    let mut total_matches = 0usize;
    let mut accumulate = |iterations: &[egraph::Iteration]| {
        for it in iterations {
            search_time += it.search_time;
            merge_time += it.merge_time;
            apply_time += it.apply_time;
            rebuild_time += it.rebuild_time;
            relation_build_time += it.relation_build_time;
            total_matches += it.total_matches;
        }
    };
    accumulate(&runner1.iterations);

    let mut runner2 = Runner::new(())
        .with_egraph(runner1.egraph)
        .with_iter_limit(params.r2_iters)
        .with_node_limit(params.node_limit)
        .with_time_limit(params.time_limit * 3 / 4)
        .with_scheduler(BackoffScheduler::new(params.match_limit, 2))
        .with_search_threads(params.search_threads)
        .with_search_backend(params.effective_backend())
        .with_cancel_token(params.cancel.clone());
    if let Some(obs) = observer {
        runner2 = runner2.with_iteration_hook(move |i, it| obs("r2", i, it));
    }
    let runner2 = runner2.run(&r2);
    accumulate(&runner2.iterations);
    let rules = merge_rule_profiles(&runner1.rule_profiles, &runner2.rule_profiles);
    let mut egraph = runner2.egraph;
    let nodes_after_r2 = egraph.total_number_of_nodes();
    let r2_stop = runner2.stop_reason.clone().expect("phase 2 ran");
    let r2_iterations = runner2.iterations.len();

    let pruned = if params.prune {
        prune_redundant(&mut egraph)
    } else {
        0
    };

    let stats = SaturationStats {
        nodes_after_r1,
        nodes_after_r2,
        classes: egraph.num_classes(),
        r1_stop,
        r2_stop,
        r1_iterations,
        r2_iterations,
        pruned,
        search_time,
        merge_time,
        apply_time,
        rebuild_time,
        relation_build_time,
        total_matches,
        rules,
    };
    (
        NetlistEGraph {
            egraph,
            inputs: net.inputs,
            outputs: net.outputs,
            vmap: net.vmap,
        },
        stats,
    )
}

/// Merges the two phases' per-rule profiles into one name-sorted list
/// (rules shared by both rulesets — there are none today — would sum).
fn merge_rule_profiles(
    r1: &FxHashMap<Symbol, RuleProfile>,
    r2: &FxHashMap<Symbol, RuleProfile>,
) -> Vec<RuleSummary> {
    let mut merged: FxHashMap<Symbol, RuleProfile> = r1.clone();
    for (name, profile) in r2 {
        merged.entry(*name).or_default().merge(profile);
    }
    let mut rules: Vec<RuleSummary> = merged
        .into_iter()
        .map(|(name, p)| RuleSummary {
            name: name.as_str().to_owned(),
            search_time: p.search_time,
            matches: p.matches,
            applications: p.applications,
        })
        .collect();
    rules.sort_by(|a, b| a.name.cmp(&b.name));
    rules
}

/// Deletes commuted duplicates of symmetric operators: within each
/// e-class, among nodes with the same operator and the same child
/// multiset, only one representative is kept (the paper's third
/// optimization: `XOR(a,b,c)` and `XOR(b,a,c)` need not coexist).
pub fn prune_redundant(egraph: &mut EGraph<BoolLang>) -> usize {
    // Collect the representatives to keep.
    let mut keep: FxHashSet<(Id, BoolLang)> = FxHashSet::default();
    for class in egraph.classes() {
        let mut seen: FxHashSet<(std::mem::Discriminant<BoolLang>, Vec<Id>)> = FxHashSet::default();
        for node in class.iter() {
            if node.is_symmetric() {
                let mut key: Vec<Id> = node.children().to_vec();
                key.sort_unstable();
                if seen.insert((std::mem::discriminant(node), key)) {
                    keep.insert((class.id, node.clone()));
                }
            } else {
                keep.insert((class.id, node.clone()));
            }
        }
    }
    egraph.retain_nodes(|class, node| keep.contains(&(class.id, node.clone())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert::aig_to_egraph;
    use egraph::RecExpr;

    fn fa_netlist() -> aig::Aig {
        let mut a = aig::Aig::new();
        let x = a.add_input();
        let y = a.add_input();
        let z = a.add_input();
        let (s, c) = aig::gen::full_adder(&mut a, x, y, z);
        a.add_output("s", s);
        a.add_output("c", c);
        a
    }

    #[test]
    fn saturation_discovers_xor3_and_maj() {
        let net = aig_to_egraph(&fa_netlist());
        let (net, stats) = saturate(net, &SaturateParams::small());
        assert!(stats.nodes_after_r2 >= stats.nodes_after_r1);
        // The sum output class must now contain (^3 i0 i1 i2) and the
        // carry class (maj i0 i1 i2).
        let sum_expr: RecExpr<BoolLang> = "(^3 i0 i1 i2)".parse().unwrap();
        let maj_expr: RecExpr<BoolLang> = "(maj i0 i1 i2)".parse().unwrap();
        let sum = net.egraph.lookup_expr(&sum_expr).expect("xor3 identified");
        let maj = net.egraph.lookup_expr(&maj_expr).expect("maj identified");
        assert_eq!(net.egraph.find(sum), net.egraph.find(net.outputs[0].1));
        assert_eq!(net.egraph.find(maj), net.egraph.find(net.outputs[1].1));
    }

    #[test]
    fn pruning_reduces_nodes() {
        let net = aig_to_egraph(&fa_netlist());
        let params = SaturateParams {
            prune: false,
            ..SaturateParams::small()
        };
        let (net, _) = saturate(net, &params);
        let mut egraph = net.egraph;
        let before = egraph.total_number_of_nodes();
        let pruned = prune_redundant(&mut egraph);
        assert_eq!(egraph.total_number_of_nodes(), before - pruned);
        egraph.check_invariants();
    }

    #[test]
    fn cancelled_token_stops_both_phases() {
        let cancel = CancelToken::new();
        cancel.cancel();
        let net = aig_to_egraph(&fa_netlist());
        let params = SaturateParams {
            cancel: cancel.clone(),
            ..SaturateParams::small()
        };
        let (_, stats) = saturate(net, &params);
        assert_eq!(stats.r1_stop, StopReason::Cancelled);
        assert_eq!(stats.r2_stop, StopReason::Cancelled);
        assert!(stats.was_cancelled());
        assert_eq!(stats.r1_iterations, 0);
        assert_eq!(stats.r2_iterations, 0);
    }

    #[test]
    fn lightweight_params_still_identify() {
        let net = aig_to_egraph(&fa_netlist());
        let params = SaturateParams {
            lightweight: true,
            ..SaturateParams::small()
        };
        let (net, _) = saturate(net, &params);
        let maj_expr: RecExpr<BoolLang> = "(maj i0 i1 i2)".parse().unwrap();
        assert!(net.egraph.lookup_expr(&maj_expr).is_some());
    }
}
