//! A tiny pattern-expression builder used to generate and
//! de-duplicate the harvested `R2` rule patterns.

use std::collections::HashMap;

/// A pattern expression over numbered variables (0 = `?a`, 1 = `?b`, …).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum PatExpr {
    /// Variable by index.
    V(usize),
    /// Negation.
    Not(Box<PatExpr>),
    /// Conjunction.
    And(Box<PatExpr>, Box<PatExpr>),
    /// Disjunction.
    Or(Box<PatExpr>, Box<PatExpr>),
    /// 2-input XOR.
    Xor(Box<PatExpr>, Box<PatExpr>),
    /// 3-input XOR.
    Xor3(Box<PatExpr>, Box<PatExpr>, Box<PatExpr>),
    /// 3-input majority.
    Maj(Box<PatExpr>, Box<PatExpr>, Box<PatExpr>),
}

/// Shorthand constructors.
pub fn v(i: usize) -> PatExpr {
    PatExpr::V(i)
}
/// Negation.
pub fn not(e: PatExpr) -> PatExpr {
    PatExpr::Not(Box::new(e))
}
/// Conjunction.
pub fn and(a: PatExpr, b: PatExpr) -> PatExpr {
    PatExpr::And(Box::new(a), Box::new(b))
}
/// Disjunction.
pub fn or(a: PatExpr, b: PatExpr) -> PatExpr {
    PatExpr::Or(Box::new(a), Box::new(b))
}
/// 2-input XOR.
pub fn xor(a: PatExpr, b: PatExpr) -> PatExpr {
    PatExpr::Xor(Box::new(a), Box::new(b))
}
/// 3-input XOR.
pub fn xor3(a: PatExpr, b: PatExpr, c: PatExpr) -> PatExpr {
    PatExpr::Xor3(Box::new(a), Box::new(b), Box::new(c))
}
/// 3-input majority.
pub fn maj(a: PatExpr, b: PatExpr, c: PatExpr) -> PatExpr {
    PatExpr::Maj(Box::new(a), Box::new(b), Box::new(c))
}

impl PatExpr {
    /// Renders as a pattern s-expression (`?a`, `?b`, …).
    pub fn render(&self) -> String {
        match self {
            PatExpr::V(i) => format!("?{}", (b'a' + *i as u8) as char),
            PatExpr::Not(e) => format!("(! {})", e.render()),
            PatExpr::And(a, b) => format!("(& {} {})", a.render(), b.render()),
            PatExpr::Or(a, b) => format!("(| {} {})", a.render(), b.render()),
            PatExpr::Xor(a, b) => format!("(^ {} {})", a.render(), b.render()),
            PatExpr::Xor3(a, b, c) => {
                format!("(^3 {} {} {})", a.render(), b.render(), c.render())
            }
            PatExpr::Maj(a, b, c) => {
                format!("(maj {} {} {})", a.render(), b.render(), c.render())
            }
        }
    }

    /// Applies a variable substitution `i -> perm[i]`.
    pub fn permute(&self, perm: &[usize]) -> PatExpr {
        match self {
            PatExpr::V(i) => PatExpr::V(perm[*i]),
            PatExpr::Not(e) => not(e.permute(perm)),
            PatExpr::And(a, b) => and(a.permute(perm), b.permute(perm)),
            PatExpr::Or(a, b) => or(a.permute(perm), b.permute(perm)),
            PatExpr::Xor(a, b) => xor(a.permute(perm), b.permute(perm)),
            PatExpr::Xor3(a, b, c) => xor3(a.permute(perm), b.permute(perm), c.permute(perm)),
            PatExpr::Maj(a, b, c) => maj(a.permute(perm), b.permute(perm), c.permute(perm)),
        }
    }

    /// Renames variables by first occurrence (0, 1, 2 …) so that
    /// permuted copies of symmetric patterns collapse to one canonical
    /// form — the paper's "eliminated duplicate rules" step.
    pub fn canonicalize(&self) -> PatExpr {
        let mut rename: HashMap<usize, usize> = HashMap::new();
        self.canon_rec(&mut rename)
    }

    fn canon_rec(&self, rename: &mut HashMap<usize, usize>) -> PatExpr {
        match self {
            PatExpr::V(i) => {
                let next = rename.len();
                PatExpr::V(*rename.entry(*i).or_insert(next))
            }
            PatExpr::Not(e) => not(e.canon_rec(rename)),
            PatExpr::And(a, b) => {
                let a = a.canon_rec(rename);
                let b = b.canon_rec(rename);
                and(a, b)
            }
            PatExpr::Or(a, b) => {
                let a = a.canon_rec(rename);
                let b = b.canon_rec(rename);
                or(a, b)
            }
            PatExpr::Xor(a, b) => {
                let a = a.canon_rec(rename);
                let b = b.canon_rec(rename);
                xor(a, b)
            }
            PatExpr::Xor3(a, b, c) => {
                let a = a.canon_rec(rename);
                let b = b.canon_rec(rename);
                let c = c.canon_rec(rename);
                xor3(a, b, c)
            }
            PatExpr::Maj(a, b, c) => {
                let a = a.canon_rec(rename);
                let b = b.canon_rec(rename);
                let c = c.canon_rec(rename);
                maj(a, b, c)
            }
        }
    }

    /// Evaluates under an assignment (variable `i` = bit `i`).
    pub fn eval(&self, assignment: u32) -> bool {
        match self {
            PatExpr::V(i) => (assignment >> i) & 1 == 1,
            PatExpr::Not(e) => !e.eval(assignment),
            PatExpr::And(a, b) => a.eval(assignment) & b.eval(assignment),
            PatExpr::Or(a, b) => a.eval(assignment) | b.eval(assignment),
            PatExpr::Xor(a, b) => a.eval(assignment) ^ b.eval(assignment),
            PatExpr::Xor3(a, b, c) => a.eval(assignment) ^ b.eval(assignment) ^ c.eval(assignment),
            PatExpr::Maj(a, b, c) => {
                let (x, y, z) = (a.eval(assignment), b.eval(assignment), c.eval(assignment));
                (x & y) | (x & z) | (y & z)
            }
        }
    }
}

/// All permutations of `{0, 1, 2}`.
pub fn perms3() -> [[usize; 3]; 6] {
    [
        [0, 1, 2],
        [0, 2, 1],
        [1, 0, 2],
        [1, 2, 0],
        [2, 0, 1],
        [2, 1, 0],
    ]
}

/// Instantiates `template` over all 3-variable permutations,
/// canonicalizes, and de-duplicates (preserving generation order).
pub fn permuted_variants(template: &PatExpr) -> Vec<PatExpr> {
    let mut out: Vec<PatExpr> = Vec::new();
    for perm in perms3() {
        let cand = template.permute(&perm).canonicalize();
        if !out.contains(&cand) {
            out.push(cand);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_and_eval() {
        let e = or(and(v(0), v(1)), not(v(2)));
        assert_eq!(e.render(), "(| (& ?a ?b) (! ?c))");
        assert!(e.eval(0b011));
        assert!(e.eval(0b000)); // !c with c=0
        assert!(!e.eval(0b100));
    }

    #[test]
    fn canonicalize_renames_by_first_occurrence() {
        let e = and(v(2), v(0));
        assert_eq!(e.canonicalize().render(), "(& ?a ?b)");
    }

    #[test]
    fn symmetric_template_collapses() {
        // maj SOP is fully symmetric only modulo operand order, so
        // permuted variants give more than one but fewer than six forms.
        let sop = or(or(and(v(0), v(1)), and(v(0), v(2))), and(v(1), v(2)));
        let variants = permuted_variants(&sop);
        assert!(!variants.is_empty());
        assert!(variants.len() <= 6);
        // All variants compute majority.
        for var in &variants {
            for a in 0..8 {
                let bits = (a & 1) + ((a >> 1) & 1) + ((a >> 2) & 1);
                assert_eq!(var.eval(a), bits >= 2);
            }
        }
    }
}
