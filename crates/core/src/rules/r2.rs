//! `R2`: the XOR/MAJ identification rules, generated from the
//! structural template families that adder cones exhibit in
//! pre-mapping, optimized, and technology-mapped netlists — mirroring
//! the paper's harvesting methodology (Section IV-A2) — then
//! canonically de-duplicated and curated to the paper's counts
//! (39 MAJ + 90 XOR).
//!
//! Every candidate's right-hand side is *derived from its truth table*
//! (XOR3/¬XOR3/MAJ/¬MAJ/XOR2/¬XOR2), so the generator is sound by
//! construction; the test suite re-verifies independently.

use super::gen::{and, maj, not, or, v, xor, xor3, PatExpr};
use super::RuleSpec;

/// The target function a harvested pattern must compute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Target {
    Xor3,
    NotXor3,
    Maj3,
    NotMaj3,
    Xor2,
    NotXor2,
}

fn classify(e: &PatExpr) -> Option<Target> {
    let tt: Vec<bool> = (0..8).map(|i| e.eval(i)).collect();
    let xor3_tt: Vec<bool> = (0..8u32).map(|i| (i.count_ones() % 2) == 1).collect();
    let maj_tt: Vec<bool> = (0..8u32).map(|i| i.count_ones() >= 2).collect();
    let xor2_tt: Vec<bool> = (0..8u32).map(|i| ((i & 1) ^ ((i >> 1) & 1)) == 1).collect();
    let neg = |t: &[bool]| t.iter().map(|b| !b).collect::<Vec<bool>>();
    if tt == xor3_tt {
        Some(Target::Xor3)
    } else if tt == neg(&xor3_tt) {
        Some(Target::NotXor3)
    } else if tt == maj_tt {
        Some(Target::Maj3)
    } else if tt == neg(&maj_tt) {
        Some(Target::NotMaj3)
    } else if tt == xor2_tt {
        Some(Target::Xor2)
    } else if tt == neg(&xor2_tt) {
        Some(Target::NotXor2)
    } else {
        None
    }
}

fn rhs_for(target: Target) -> &'static str {
    match target {
        Target::Xor3 => "(^3 ?a ?b ?c)",
        Target::NotXor3 => "(! (^3 ?a ?b ?c))",
        Target::Maj3 => "(maj ?a ?b ?c)",
        Target::NotMaj3 => "(! (maj ?a ?b ?c))",
        Target::Xor2 => "(^ ?a ?b)",
        Target::NotXor2 => "(! (^ ?a ?b))",
    }
}

/// Curates candidates: canonicalize, drop duplicates and non-target
/// functions, derive the rhs from the truth table, and cut to `target`
/// rules.
///
/// # Panics
///
/// Panics if a candidate computes none of the target functions (a
/// generator bug) or fewer than `count` distinct rules were generated.
fn curate(prefix: &str, candidates: Vec<PatExpr>, count: usize) -> Vec<RuleSpec> {
    let mut seen: Vec<PatExpr> = Vec::new();
    let mut out: Vec<RuleSpec> = Vec::new();
    for cand in candidates {
        let canon = cand.canonicalize();
        if seen.contains(&canon) {
            continue;
        }
        let target = classify(&canon)
            .unwrap_or_else(|| panic!("candidate {} is not a target function", canon.render()));
        seen.push(canon.clone());
        out.push((
            format!("{prefix}-{:02}", out.len()),
            canon.render(),
            rhs_for(target).to_owned(),
        ));
        if out.len() == count {
            break;
        }
    }
    assert!(
        out.len() == count,
        "generated only {} of {count} {prefix} rules",
        out.len()
    );
    out
}

/// XNOR as an AND of NANDs — the shape AIG netlists exhibit *before*
/// any `|` nodes exist (harvested from mapped benchmarks).
fn xnor_nand(a: PatExpr, b: PatExpr) -> PatExpr {
    and(not(and(not(a.clone()), b.clone())), not(and(a, not(b))))
}

/// XOR as an AND of NANDs (`!(¬a·¬b) · !(a·b)`), similarly NAND-only.
fn xor_nand(a: PatExpr, b: PatExpr) -> PatExpr {
    and(not(and(not(a.clone()), not(b.clone()))), not(and(a, b)))
}

/// The structural forms of 2-input XOR harvested from mapped/optimized
/// netlists (SOP, AOI, OAI, NAND–NAND, negated XNOR shapes).
fn xor2_forms(a: PatExpr, b: PatExpr) -> Vec<PatExpr> {
    vec![
        xor(a.clone(), b.clone()),
        xor_nand(a.clone(), b.clone()),
        not(xnor_nand(a.clone(), b.clone())),
        or(
            and(a.clone(), not(b.clone())),
            and(not(a.clone()), b.clone()),
        ),
        and(or(a.clone(), b.clone()), not(and(a.clone(), b.clone()))),
        and(or(a.clone(), b.clone()), or(not(a.clone()), not(b.clone()))),
        not(and(
            not(and(a.clone(), not(b.clone()))),
            not(and(not(a.clone()), b.clone())),
        )),
        not(or(
            and(a.clone(), b.clone()),
            and(not(a.clone()), not(b.clone())),
        )),
        not(or(and(a.clone(), b.clone()), not(or(a.clone(), b.clone())))),
        and(not(and(a.clone(), b.clone())), or(a, b)),
    ]
}

/// The structural forms of 2-input XNOR.
fn xnor2_forms(a: PatExpr, b: PatExpr) -> Vec<PatExpr> {
    vec![
        not(xor(a.clone(), b.clone())),
        xnor_nand(a.clone(), b.clone()),
        not(xor_nand(a.clone(), b.clone())),
        or(
            and(a.clone(), b.clone()),
            and(not(a.clone()), not(b.clone())),
        ),
        or(and(a.clone(), b.clone()), not(or(a.clone(), b.clone()))),
        and(or(not(a.clone()), b.clone()), or(a.clone(), not(b.clone()))),
        not(and(or(a.clone(), b.clone()), not(and(a, b)))),
    ]
}

/// The 39 MAJ identification rules.
pub fn maj_table() -> Vec<RuleSpec> {
    let (a, b, c) = (v(0), v(1), v(2));
    let ab = || and(a.clone(), b.clone());
    let ac = || and(a.clone(), c.clone());
    let bc = || and(b.clone(), c.clone());
    let mut cands: Vec<PatExpr> = vec![
        // NAND-only forms harvested from mapped/dch benchmarks (these
        // fire before R1 has introduced any `|` nodes, so they carry
        // most of the post-mapping recovery).
        // (bc | a)(b | c) as AND of NANDs.
        and(
            not(and(not(bc()), not(a.clone()))),
            not(and(not(b.clone()), not(c.clone()))),
        ),
        and(
            not(and(not(a.clone()), not(bc()))),
            not(and(not(b.clone()), not(c.clone()))),
        ),
        // ¬MAJ as a NOR of products (two associations, two orders).
        and(not(bc()), and(not(ab()), not(ac()))),
        and(not(ab()), and(not(ac()), not(bc()))),
        and(and(not(ab()), not(ac())), not(bc())),
        // MAJ as POS over NANDs of negations.
        and(
            not(and(not(a.clone()), not(b.clone()))),
            and(
                not(and(not(a.clone()), not(c.clone()))),
                not(and(not(b.clone()), not(c.clone()))),
            ),
        ),
        // Carry in NAND form with an XOR-shaped propagate.
        not(and(
            not(ab()),
            not(and(xor_nand(a.clone(), b.clone()), c.clone())),
        )),
        not(and(
            not(ab()),
            not(and(c.clone(), xor_nand(a.clone(), b.clone()))),
        )),
        // SOP associations.
        or(or(ab(), ac()), bc()),
        or(ab(), or(ac(), bc())),
        // Factored carry forms.
        or(ab(), and(c.clone(), or(a.clone(), b.clone()))),
        or(ab(), and(c.clone(), xor(a.clone(), b.clone()))),
        and(or(a.clone(), b.clone()), or(c.clone(), ab())),
        // The paper's NAND–NAND example form.
        and(
            not(and(not(a.clone()), not(bc()))),
            not(and(not(b.clone()), not(c.clone()))),
        ),
        // AOI carry (the classic ripple-carry shape).
        or(and(a.clone(), or(b.clone(), c.clone())), bc()),
        not(and(
            not(and(a.clone(), or(b.clone(), c.clone()))),
            not(bc()),
        )),
        // Shannon / mux on one input.
        or(
            and(a.clone(), or(b.clone(), c.clone())),
            and(not(a.clone()), bc()),
        ),
        // Minority (¬MAJ) SOP and its complement form.
        or(
            or(
                and(not(a.clone()), not(b.clone())),
                and(not(a.clone()), not(c.clone())),
            ),
            and(not(b.clone()), not(c.clone())),
        ),
        not(or(
            or(
                and(not(a.clone()), not(b.clone())),
                and(not(a.clone()), not(c.clone())),
            ),
            and(not(b.clone()), not(c.clone())),
        )),
        // De-Morganed SOP (NAND–NAND–NAND).
        not(and(and(not(ab()), not(ac())), not(bc()))),
        not(and(not(ab()), and(not(ac()), not(bc())))),
        // Generate–propagate with plain OR.
        and(or(a.clone(), b.clone()), or(ab(), c.clone())),
        // OAI dual of the factored form.
        not(and(
            not(ab()),
            not(and(c.clone(), or(a.clone(), b.clone()))),
        )),
        // Negated-input normalization.
        maj(not(a.clone()), not(b.clone()), not(c.clone())),
        // POS form and variants.
        and(
            and(or(a.clone(), b.clone()), or(a.clone(), c.clone())),
            or(b.clone(), c.clone()),
        ),
        and(
            or(a.clone(), b.clone()),
            and(or(a.clone(), c.clone()), or(b.clone(), c.clone())),
        ),
        not(or(
            or(not(or(a.clone(), b.clone())), not(or(a.clone(), c.clone()))),
            not(or(b.clone(), c.clone())),
        )),
        // Minority right-assoc.
        or(
            and(not(a.clone()), not(b.clone())),
            or(
                and(not(a.clone()), not(c.clone())),
                and(not(b.clone()), not(c.clone())),
            ),
        ),
        // Partially De-Morganed SOPs.
        or(not(and(not(ab()), not(ac()))), bc()),
        or(ab(), not(and(not(ac()), not(bc())))),
    ];
    // Carry-with-XOR family: ab | (xor_form(a,b) & c), over every
    // harvested XOR shape — the shapes mapped netlists produce.
    for form in xor2_forms(a.clone(), b.clone()).into_iter().skip(1) {
        cands.push(or(ab(), and(form, c.clone())));
    }
    // AOI carry with XOR-shaped propagate: (a & xor_form(b,c)) | bc.
    for form in xor2_forms(b.clone(), c.clone()).into_iter().take(4) {
        cands.push(or(and(a.clone(), form), bc()));
    }
    // Mux-Shannon with De-Morganed arms.
    cands.push(or(
        and(a.clone(), not(and(not(b.clone()), not(c.clone())))),
        and(not(a.clone()), bc()),
    ));
    cands.push(or(
        and(a.clone(), or(b.clone(), c.clone())),
        and(not(a.clone()), not(or(not(b.clone()), not(c.clone())))),
    ));
    cands.push(or(
        and(a.clone(), not(and(not(b.clone()), not(c.clone())))),
        and(not(a.clone()), not(or(not(b.clone()), not(c.clone())))),
    ));
    // Operand-swapped harvested variants (mapped netlists present both
    // orders before R1's commutativity has propagated).
    cands.push(or(and(xor(a.clone(), b.clone()), c.clone()), ab()));
    cands.push(and(
        or(a.clone(), and(b.clone(), c.clone())),
        or(b.clone(), c.clone()),
    ));
    cands.push(or(
        and(not(a.clone()), bc()),
        and(a.clone(), or(b.clone(), c.clone())),
    ));
    cands.push(not(or(
        not(or(a.clone(), b.clone())),
        not(and(or(a.clone(), c.clone()), or(b.clone(), c.clone()))),
    )));
    cands.push(or(and(or(a.clone(), b.clone()), c.clone()), ab()));
    curate("maj", cands, 39)
}

/// The 90 XOR identification rules.
pub fn xor_table() -> Vec<RuleSpec> {
    let (a, b, c) = (v(0), v(1), v(2));
    let mut cands: Vec<PatExpr> = Vec::new();

    // NAND-ladder compositions harvested from mapped/dch benchmarks:
    // the outer level is XNOR/XOR-of-(inner, c) in AND-of-NANDs form,
    // the inner level an XOR/XNOR of (a, b) in NAND-only form. These
    // are the dominant post-mapping sum shapes.
    for inner in [
        xnor_nand(a.clone(), b.clone()),
        xor_nand(a.clone(), b.clone()),
    ] {
        cands.push(xnor_nand(inner.clone(), c.clone()));
        cands.push(xnor_nand(c.clone(), inner.clone()));
        cands.push(xor_nand(inner.clone(), c.clone()));
        cands.push(not(xnor_nand(inner.clone(), c.clone())));
        cands.push(not(xor_nand(inner, c.clone())));
    }

    // XOR3 assembly chains (plain, single/double/triple negation).
    cands.push(xor(xor(a.clone(), b.clone()), c.clone()));
    cands.push(xor(a.clone(), xor(b.clone(), c.clone())));
    for neg_pos in 0..3 {
        let lits = |i: usize| {
            let base = [a.clone(), b.clone(), c.clone()][i].clone();
            if i == neg_pos {
                not(base)
            } else {
                base
            }
        };
        cands.push(xor(xor(lits(0), lits(1)), lits(2)));
        cands.push(xor(lits(0), xor(lits(1), lits(2))));
    }
    for negs in [[0, 1], [0, 2], [1, 2]] {
        let lits = |i: usize| {
            let base = [a.clone(), b.clone(), c.clone()][i].clone();
            if negs.contains(&i) {
                not(base)
            } else {
                base
            }
        };
        cands.push(xor(xor(lits(0), lits(1)), lits(2)));
        cands.push(xor(lits(0), xor(lits(1), lits(2))));
    }
    cands.push(xor(xor(not(a.clone()), not(b.clone())), not(c.clone())));
    // XNOR-of-XNOR compositions.
    cands.push(xor(not(xor(a.clone(), b.clone())), c.clone()));
    cands.push(xor(a.clone(), not(xor(b.clone(), c.clone()))));
    cands.push(not(xor(not(xor(a.clone(), b.clone())), c.clone())));
    cands.push(not(xor(a.clone(), not(xor(b.clone(), c.clone())))));

    // Negated-input XOR3 normalizations.
    cands.push(xor3(not(a.clone()), b.clone(), c.clone()));
    cands.push(xor3(a.clone(), not(b.clone()), c.clone()));
    cands.push(xor3(a.clone(), b.clone(), not(c.clone())));
    cands.push(xor3(not(a.clone()), not(b.clone()), c.clone()));
    cands.push(xor3(not(a.clone()), b.clone(), not(c.clone())));
    cands.push(xor3(a.clone(), not(b.clone()), not(c.clone())));
    cands.push(xor3(not(a.clone()), not(b.clone()), not(c.clone())));

    // Sum chains where the inner XOR2 appears in a harvested shape.
    for form in xor2_forms(a.clone(), b.clone()).into_iter().skip(1) {
        cands.push(xor(form, c.clone()));
    }
    for form in xor2_forms(b.clone(), c.clone()).into_iter().skip(1) {
        cands.push(xor(a.clone(), form));
    }

    // SOP-of-XOR: (X & !c) | (!X & c) with X in harvested shapes.
    for form in xor2_forms(a.clone(), b.clone()) {
        cands.push(or(
            and(form.clone(), not(c.clone())),
            and(not(form), c.clone()),
        ));
    }
    // Mux forms with matched XOR/XNOR arm shapes.
    let xs = xor2_forms(b.clone(), c.clone());
    let ns = xnor2_forms(b.clone(), c.clone());
    for (x, n) in xs.iter().zip(ns.iter()) {
        cands.push(or(
            and(a.clone(), n.clone()),
            and(not(a.clone()), x.clone()),
        ));
        cands.push(or(
            and(a.clone(), x.clone()),
            and(not(a.clone()), n.clone()),
        ));
    }

    // The paper's factored XOR3 example (Table I, second XOR rule).
    cands.push(and(
        or(
            or(a.clone(), and(b.clone(), c.clone())),
            not(or(b.clone(), c.clone())),
        ),
        or(
            not(a.clone()),
            and(not(and(b.clone(), c.clone())), or(b.clone(), c.clone())),
        ),
    ));

    // Plain 2-input XOR/XNOR recognitions in harvested shapes (the
    // building blocks R2 needs before the chains apply).
    let (p, q) = (v(0), v(1));
    for form in xor2_forms(p.clone(), q.clone()).into_iter().skip(1) {
        cands.push(form);
    }
    for form in xnor2_forms(p.clone(), q.clone()).into_iter().skip(1) {
        cands.push(form);
    }
    // Mux-style XOR2: (p & !q) | (!p & q) is covered; add OAI/NAND
    // mixed shapes.
    cands.push(not(or(
        and(p.clone(), q.clone()),
        and(not(p.clone()), not(q.clone())),
    )));
    cands.push(and(
        not(and(p.clone(), q.clone())),
        not(and(not(p.clone()), not(q.clone()))),
    ));
    cands.push(not(and(
        or(p.clone(), not(q.clone())),
        or(not(p.clone()), q.clone()),
    )));

    // Full 4-minterm SOP trees of XOR3 (balanced and left-deep, over
    // several minterm orders).
    let minterm = |pa: bool, pb: bool, pc: bool| {
        let lit = |e: &PatExpr, pos: bool| {
            if pos {
                e.clone()
            } else {
                not(e.clone())
            }
        };
        and(and(lit(&a, pa), lit(&b, pb)), lit(&c, pc))
    };
    let odd = [
        minterm(true, false, false),
        minterm(false, true, false),
        minterm(false, false, true),
        minterm(true, true, true),
    ];
    let even = [
        minterm(false, false, false),
        minterm(true, true, false),
        minterm(true, false, true),
        minterm(false, true, true),
    ];
    let orders: [[usize; 4]; 6] = [
        [0, 1, 2, 3],
        [3, 0, 1, 2],
        [0, 3, 1, 2],
        [1, 0, 3, 2],
        [2, 1, 0, 3],
        [0, 2, 3, 1],
    ];
    for ms in [&odd, &even] {
        for order in &orders {
            let m: Vec<PatExpr> = order.iter().map(|&i| ms[i].clone()).collect();
            // Balanced tree.
            cands.push(or(
                or(m[0].clone(), m[1].clone()),
                or(m[2].clone(), m[3].clone()),
            ));
            // Left-deep tree.
            cands.push(or(
                or(or(m[0].clone(), m[1].clone()), m[2].clone()),
                m[3].clone(),
            ));
        }
    }

    curate("xor", cands, 90)
}
