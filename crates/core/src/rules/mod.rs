//! BoolE's rewriting library (Table I of the paper).
//!
//! The ruleset is split exactly as in the paper:
//!
//! * `R1` ([`r1_table`], 68 rules) — basic Boolean algebra
//!   (commutativity, associativity, De Morgan, distributivity,
//!   absorption, XOR identities…) that *expands* the e-graph with
//!   functionally equivalent forms.
//! * `R2` ([`maj_table`], 39 rules; [`xor_table`], 90 rules) —
//!   identification rules that rewrite structural patterns into
//!   first-class `maj` / `^3` operators. Following the paper's
//!   methodology, these are harvested from the structural shapes that
//!   adder cones exhibit before and after optimization/mapping
//!   (SOP, factored, NAND–NAND, AOI, mux/Shannon forms), instantiated
//!   over input permutations and polarities, and de-duplicated.
//!
//! Every rule is checked sound by exhaustive truth-table evaluation in
//! the test suite (and the counts are pinned to the paper's).

mod gen;
mod r1;
mod r2;

pub use gen::{perms3, permuted_variants, PatExpr};

use egraph::{Analysis, Rewrite};

use crate::BoolLang;

/// A rewrite rule as strings: `(name, lhs, rhs)`.
pub type RuleSpec = (String, String, String);

/// The 68 basic Boolean rules (`R1`).
pub fn r1_table() -> Vec<RuleSpec> {
    r1::table()
}

/// The 39 majority-identification rules of `R2`.
pub fn maj_table() -> Vec<RuleSpec> {
    r2::maj_table()
}

/// The 90 XOR-identification rules of `R2`.
pub fn xor_table() -> Vec<RuleSpec> {
    r2::xor_table()
}

/// A pruned `R1` subset for very large benchmarks (the paper's
/// "lightweight version of rewriting rules", Section IV-A2): keeps the
/// simplification and recognition directions, drops the most explosive
/// expansion rules (right-to-left distributivity, XOR definitions as
/// expansions, consensus introduction).
pub fn r1_lightweight_table() -> Vec<RuleSpec> {
    let heavy = [
        "dist-and-or",
        "dist-or-and",
        "xor-def-sop",
        "xor-def-aoi",
        "consensus-add",
        "xor-dist-and",
        "not-push-xor",
    ];
    r1::table()
        .into_iter()
        .filter(|(name, _, _)| !heavy.contains(&name.as_str()))
        .collect()
}

fn build<N: Analysis<BoolLang>>(specs: Vec<RuleSpec>) -> Vec<Rewrite<BoolLang, N>> {
    specs
        .into_iter()
        .map(|(name, lhs, rhs)| {
            Rewrite::parse(&name, &lhs, &rhs)
                .unwrap_or_else(|e| panic!("invalid rule {name}: {lhs} => {rhs}: {e}"))
        })
        .collect()
}

/// Builds the `R1` rewrites.
pub fn r1_rules<N: Analysis<BoolLang>>() -> Vec<Rewrite<BoolLang, N>> {
    build(r1_table())
}

/// Builds the lightweight `R1` rewrites.
pub fn r1_lightweight_rules<N: Analysis<BoolLang>>() -> Vec<Rewrite<BoolLang, N>> {
    build(r1_lightweight_table())
}

/// Builds the full `R2` rewrites (majority + XOR identification).
pub fn r2_rules<N: Analysis<BoolLang>>() -> Vec<Rewrite<BoolLang, N>> {
    let mut specs = maj_table();
    specs.extend(xor_table());
    build(specs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use egraph::{ENodeOrVar, Id, Language, Pattern, Var};
    use std::collections::HashMap;

    /// Evaluates a pattern under a variable assignment.
    fn eval_pattern(p: &Pattern<BoolLang>, env: &HashMap<Var, bool>) -> bool {
        fn go(p: &Pattern<BoolLang>, id: Id, env: &HashMap<Var, bool>) -> bool {
            match &p.ast[id] {
                ENodeOrVar::Var(v) => env[v],
                ENodeOrVar::ENode(node) => {
                    let c = node.children();
                    match node {
                        BoolLang::Const(b) => *b,
                        BoolLang::Var(_) => panic!("rules must not use concrete signals"),
                        BoolLang::Not(_) => !go(p, c[0], env),
                        BoolLang::And(_) => go(p, c[0], env) & go(p, c[1], env),
                        BoolLang::Or(_) => go(p, c[0], env) | go(p, c[1], env),
                        BoolLang::Xor(_) => go(p, c[0], env) ^ go(p, c[1], env),
                        BoolLang::Xor3(_) => go(p, c[0], env) ^ go(p, c[1], env) ^ go(p, c[2], env),
                        BoolLang::Maj(_) => {
                            let (a, b, cc) = (go(p, c[0], env), go(p, c[1], env), go(p, c[2], env));
                            (a & b) | (a & cc) | (b & cc)
                        }
                        BoolLang::Fa(_) | BoolLang::Fst(_) | BoolLang::Snd(_) => {
                            panic!("fa/fst/snd must not appear in rewrite rules")
                        }
                    }
                }
            }
        }
        go(p, p.ast.root(), env)
    }

    fn check_sound(specs: &[RuleSpec]) {
        for (name, lhs, rhs) in specs {
            let l: Pattern<BoolLang> = lhs
                .parse()
                .unwrap_or_else(|e| panic!("rule {name}: bad lhs {lhs}: {e}"));
            let r: Pattern<BoolLang> = rhs
                .parse()
                .unwrap_or_else(|e| panic!("rule {name}: bad rhs {rhs}: {e}"));
            let vars = l.vars().to_vec();
            for v in r.vars() {
                assert!(vars.contains(v), "rule {name}: unbound rhs var {v}");
            }
            assert!(vars.len() <= 4, "rule {name} has too many variables");
            for assignment in 0u32..(1 << vars.len()) {
                let env: HashMap<Var, bool> = vars
                    .iter()
                    .enumerate()
                    .map(|(i, &v)| (v, (assignment >> i) & 1 == 1))
                    .collect();
                assert_eq!(
                    eval_pattern(&l, &env),
                    eval_pattern(&r, &env),
                    "rule {name} unsound: {lhs} != {rhs} under {env:?}"
                );
            }
        }
    }

    fn check_distinct(specs: &[RuleSpec]) {
        let mut seen = std::collections::HashSet::new();
        for (name, lhs, rhs) in specs {
            assert!(
                seen.insert((lhs.clone(), rhs.clone())),
                "duplicate rule {name}: {lhs} => {rhs}"
            );
        }
        let mut names = std::collections::HashSet::new();
        for (name, ..) in specs {
            assert!(names.insert(name.clone()), "duplicate rule name {name}");
        }
    }

    #[test]
    fn r1_is_sound_and_counts_match_paper() {
        let t = r1_table();
        check_sound(&t);
        check_distinct(&t);
        assert_eq!(t.len(), 68, "paper: 68 R1 rules");
    }

    #[test]
    fn maj_rules_sound_and_counted() {
        let t = maj_table();
        check_sound(&t);
        check_distinct(&t);
        assert_eq!(t.len(), 39, "paper: 39 MAJ rules");
        // Every MAJ rule must introduce a maj operator on the rhs.
        for (name, _, rhs) in &t {
            assert!(rhs.contains("maj"), "rule {name} rhs lacks maj");
        }
    }

    #[test]
    fn xor_rules_sound_and_counted() {
        let t = xor_table();
        check_sound(&t);
        check_distinct(&t);
        assert_eq!(t.len(), 90, "paper: 90 XOR rules");
        for (name, _, rhs) in &t {
            assert!(rhs.contains('^'), "rule {name} rhs lacks xor");
        }
    }

    #[test]
    fn lightweight_is_a_strict_subset() {
        let light = r1_lightweight_table();
        let full = r1_table();
        assert!(light.len() < full.len());
        for spec in &light {
            assert!(full.contains(spec));
        }
    }

    #[test]
    fn rules_build_into_rewrites() {
        let r1: Vec<Rewrite<BoolLang, ()>> = r1_rules();
        let r2: Vec<Rewrite<BoolLang, ()>> = r2_rules();
        assert_eq!(r1.len(), 68);
        assert_eq!(r2.len(), 129);
    }
}
