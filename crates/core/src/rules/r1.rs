//! `R1`: the 68 basic Boolean rewriting rules.

use super::RuleSpec;

/// The full `R1` table: 68 rules spanning commutativity,
/// associativity, negation/De Morgan, distributivity, absorption,
/// constants, XOR identities and definitions, and mux/consensus
/// simplifications.
pub fn table() -> Vec<RuleSpec> {
    let rules: &[(&str, &str, &str)] = &[
        // --- commutativity (3)
        ("comm-and", "(& ?a ?b)", "(& ?b ?a)"),
        ("comm-or", "(| ?a ?b)", "(| ?b ?a)"),
        ("comm-xor", "(^ ?a ?b)", "(^ ?b ?a)"),
        // --- associativity (6)
        ("assoc-and", "(& (& ?a ?b) ?c)", "(& ?a (& ?b ?c))"),
        ("assoc-and-rev", "(& ?a (& ?b ?c))", "(& (& ?a ?b) ?c)"),
        ("assoc-or", "(| (| ?a ?b) ?c)", "(| ?a (| ?b ?c))"),
        ("assoc-or-rev", "(| ?a (| ?b ?c))", "(| (| ?a ?b) ?c)"),
        ("assoc-xor", "(^ (^ ?a ?b) ?c)", "(^ ?a (^ ?b ?c))"),
        ("assoc-xor-rev", "(^ ?a (^ ?b ?c))", "(^ (^ ?a ?b) ?c)"),
        // --- negation / De Morgan (5)
        ("double-neg", "(! (! ?a))", "?a"),
        ("demorgan-and", "(! (& ?a ?b))", "(| (! ?a) (! ?b))"),
        ("demorgan-or", "(! (| ?a ?b))", "(& (! ?a) (! ?b))"),
        ("demorgan-and-rev", "(| (! ?a) (! ?b))", "(! (& ?a ?b))"),
        ("demorgan-or-rev", "(& (! ?a) (! ?b))", "(! (| ?a ?b))"),
        // --- distributivity / factoring (4)
        ("dist-and-or", "(& ?a (| ?b ?c))", "(| (& ?a ?b) (& ?a ?c))"),
        (
            "factor-and-or",
            "(| (& ?a ?b) (& ?a ?c))",
            "(& ?a (| ?b ?c))",
        ),
        ("dist-or-and", "(| ?a (& ?b ?c))", "(& (| ?a ?b) (| ?a ?c))"),
        (
            "factor-or-and",
            "(& (| ?a ?b) (| ?a ?c))",
            "(| ?a (& ?b ?c))",
        ),
        // --- absorption (6)
        ("absorb-and", "(& ?a (| ?a ?b))", "?a"),
        ("absorb-or", "(| ?a (& ?a ?b))", "?a"),
        ("absorb-and-neg", "(& ?a (| (! ?a) ?b))", "(& ?a ?b)"),
        ("absorb-or-neg", "(| ?a (& (! ?a) ?b))", "(| ?a ?b)"),
        ("absorb-dup-and", "(& ?a (& ?a ?b))", "(& ?a ?b)"),
        ("absorb-dup-or", "(| ?a (| ?a ?b))", "(| ?a ?b)"),
        // --- idempotence / complement (4)
        ("idemp-and", "(& ?a ?a)", "?a"),
        ("idemp-or", "(| ?a ?a)", "?a"),
        ("contra-and", "(& ?a (! ?a))", "false"),
        ("taut-or", "(| ?a (! ?a))", "true"),
        // --- constants (6)
        ("and-true", "(& ?a true)", "?a"),
        ("and-false", "(& ?a false)", "false"),
        ("or-false", "(| ?a false)", "?a"),
        ("or-true", "(| ?a true)", "true"),
        ("not-true", "(! true)", "false"),
        ("not-false", "(! false)", "true"),
        // --- XOR identities (7)
        ("xor-self", "(^ ?a ?a)", "false"),
        ("xor-not-self", "(^ ?a (! ?a))", "true"),
        ("xor-false", "(^ ?a false)", "?a"),
        ("xor-true", "(^ ?a true)", "(! ?a)"),
        ("xor-not-l", "(^ (! ?a) ?b)", "(! (^ ?a ?b))"),
        ("xor-not-r", "(^ ?a (! ?b))", "(! (^ ?a ?b))"),
        ("not-push-xor", "(! (^ ?a ?b))", "(^ (! ?a) ?b)"),
        // --- XOR definitions and recognitions (8)
        (
            "xor-def-sop",
            "(^ ?a ?b)",
            "(| (& ?a (! ?b)) (& (! ?a) ?b))",
        ),
        (
            "xor-rec-sop",
            "(| (& ?a (! ?b)) (& (! ?a) ?b))",
            "(^ ?a ?b)",
        ),
        ("xor-def-aoi", "(^ ?a ?b)", "(& (| ?a ?b) (! (& ?a ?b)))"),
        ("xor-rec-aoi", "(& (| ?a ?b) (! (& ?a ?b)))", "(^ ?a ?b)"),
        (
            "xor-rec-oai",
            "(& (| ?a ?b) (| (! ?a) (! ?b)))",
            "(^ ?a ?b)",
        ),
        (
            "xnor-rec-sop",
            "(| (& ?a ?b) (& (! ?a) (! ?b)))",
            "(! (^ ?a ?b))",
        ),
        (
            "xnor-rec-aoi",
            "(| (& ?a ?b) (! (| ?a ?b)))",
            "(! (^ ?a ?b))",
        ),
        (
            "xor-rec-nand",
            "(! (& (! (& ?a (! ?b))) (! (& (! ?a) ?b))))",
            "(^ ?a ?b)",
        ),
        // --- XOR algebra (5)
        ("xor-cancel", "(^ ?a (^ ?a ?b))", "?b"),
        (
            "xor-dist-and",
            "(& ?a (^ ?b ?c))",
            "(^ (& ?a ?b) (& ?a ?c))",
        ),
        (
            "xor-factor-and",
            "(^ (& ?a ?b) (& ?a ?c))",
            "(& ?a (^ ?b ?c))",
        ),
        // NOTE: `a|b => a^b^(ab)` is deliberately absent: it plants
        // degenerate XOR3 triples like xor3(a, b, a&b) in every OR
        // class, which the FA-maximizing extraction would then "count"
        // as full adders.
        ("xor-or-absorb", "(| ?a (^ ?a ?b))", "(| ?a ?b)"),
        ("xor-and-shrink", "(^ ?a (| ?a ?b))", "(& (! ?a) ?b)"),
        // --- mux / consensus (6)
        ("mux-same-sel", "(| (& ?s ?a) (& (! ?s) ?a))", "?a"),
        ("mux-taut-or", "(| (& ?a ?b) (& ?a (! ?b)))", "?a"),
        ("mux-taut-and", "(& (| ?a ?b) (| ?a (! ?b)))", "?a"),
        (
            "consensus-del",
            "(| (| (& ?a ?b) (& (! ?a) ?c)) (& ?b ?c))",
            "(| (& ?a ?b) (& (! ?a) ?c))",
        ),
        (
            "consensus-add",
            "(| (& ?a ?b) (& (! ?a) ?c))",
            "(| (| (& ?a ?b) (& (! ?a) ?c)) (& ?b ?c))",
        ),
        ("and-xor-absorb", "(& ?a (^ ?a ?b))", "(& ?a (! ?b))"),
        // --- dualities and wider De Morgan (8)
        ("nand-nor-duality", "(! (& (! ?a) (! ?b)))", "(| ?a ?b)"),
        ("nor-nand-duality", "(! (| (! ?a) (! ?b)))", "(& ?a ?b)"),
        ("or-and-subsume", "(| (& ?a ?b) ?b)", "?b"),
        ("and-or-subsume", "(& (| ?a ?b) ?b)", "?b"),
        ("xor-swap-not", "(^ (! ?a) (! ?b))", "(^ ?a ?b)"),
        (
            "xnor-to-eq",
            "(! (^ ?a ?b))",
            "(| (& ?a ?b) (& (! ?a) (! ?b)))",
        ),
        (
            "and-demorgan-3",
            "(! (& (& ?a ?b) ?c))",
            "(| (| (! ?a) (! ?b)) (! ?c))",
        ),
        (
            "or-demorgan-3",
            "(! (| (| ?a ?b) ?c))",
            "(& (& (! ?a) (! ?b)) (! ?c))",
        ),
    ];
    rules
        .iter()
        .map(|(n, l, r)| ((*n).to_owned(), (*l).to_owned(), (*r).to_owned()))
        .collect()
}
