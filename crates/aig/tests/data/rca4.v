// Hand-written structural-Verilog mirror of a 4-bit ripple-carry
// adder (aig::gen::ripple_carry_adder, cin = 0): XOR chains for sums,
// AND/OR majorities for carries. Bit 0 is a half adder (cin is 0).
module rca4 (a0, a1, a2, a3, b0, b1, b2, b3, s0, s1, s2, s3, cout);
  input a0, a1, a2, a3, b0, b1, b2, b3;
  output s0, s1, s2, s3, cout;
  wire c1, c2, c3;
  wire ab1, ac1, bc1;
  wire ab2, ac2, bc2;
  wire ab3, ac3, bc3;

  xor sx0 (s0, a0, b0);
  and cg0 (c1, a0, b0);

  xor sx1 (s1, a1, b1, c1);
  and cg1a (ab1, a1, b1);
  and cg1b (ac1, a1, c1);
  and cg1c (bc1, b1, c1);
  or  cg1 (c2, ab1, ac1, bc1);

  xor sx2 (s2, a2, b2, c2);
  and cg2a (ab2, a2, b2);
  and cg2b (ac2, a2, c2);
  and cg2c (bc2, b2, c2);
  or  cg2 (c3, ab2, ac2, bc2);

  xor sx3 (s3, a3, b3, c3);
  and cg3a (ab3, a3, b3);
  and cg3b (ac3, a3, c3);
  and cg3c (bc3, b3, c3);
  or  cg3 (cout, ab3, ac3, bc3);
endmodule
