// Hand-written structural-Verilog mirror of aig::gen::full_adder:
// a 3-input XOR for the sum, discrete AND/OR majority for the carry.
module full_adder (a, b, cin, s, c);
  input a, b, cin;
  output s, c;
  wire ab, ac, bc;
  xor x0 (s, a, b, cin);
  and g0 (ab, a, b);
  and g1 (ac, a, cin);
  and g2 (bc, b, cin);
  or  o0 (c, ab, ac, bc);
endmodule
