//! Resynthesis of small truth tables into AIG structure.
//!
//! Two structurally different generators are provided:
//!
//! * [`build_sop`] — irredundant sum-of-products via the
//!   Minato–Morreale ISOP recursion, yielding two-level AND–OR shapes.
//! * [`build_shannon`] — recursive Shannon expansion, yielding
//!   mux-tree shapes.
//!
//! Both are used by the optimizer ([`crate::opt`]) and the unmapper
//! ([`crate::map`]) to rebuild logic in forms that deliberately differ
//! from the generator's canonical XOR/MAJ shapes — reproducing the
//! structure loss that technology mapping and `dch` optimization cause
//! in the paper's benchmarks.

use crate::tt::Tt;
use crate::{Aig, Lit};

/// A product term: positive and negative literal masks over the
/// function's variables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cube {
    /// Bit `i` set: variable `i` appears positively.
    pub pos: u32,
    /// Bit `i` set: variable `i` appears negatively.
    pub neg: u32,
}

impl Cube {
    /// The cube's characteristic function over `vars` variables.
    pub fn tt(&self, vars: usize) -> Tt {
        let mut t = Tt::one(vars);
        for i in 0..vars {
            if (self.pos >> i) & 1 == 1 {
                t = t & Tt::var(vars, i);
            }
            if (self.neg >> i) & 1 == 1 {
                t = t & !Tt::var(vars, i);
            }
        }
        t
    }

    /// Number of literals in the cube.
    pub fn num_literals(&self) -> u32 {
        self.pos.count_ones() + self.neg.count_ones()
    }
}

/// Computes an irredundant sum-of-products cover of `tt`
/// (Minato–Morreale ISOP with lower bound = upper bound = `tt`).
pub fn isop(tt: Tt) -> Vec<Cube> {
    let mut cubes = Vec::new();
    isop_rec(tt, tt, tt.num_vars(), &mut cubes);
    cubes
}

/// The ISOP recursion: cover at least `lower`, staying within `upper`.
/// Returns the cover's characteristic function.
fn isop_rec(lower: Tt, upper: Tt, top: usize, out: &mut Vec<Cube>) -> Tt {
    let vars = lower.num_vars();
    if lower.bits() == 0 {
        return Tt::zero(vars);
    }
    if upper == Tt::one(vars) {
        out.push(Cube { pos: 0, neg: 0 });
        return Tt::one(vars);
    }
    // Find the topmost variable either side depends on.
    let x = (0..top)
        .rev()
        .find(|&i| lower.depends_on(i) || upper.depends_on(i))
        .expect("non-constant function must have support");

    let l0 = lower.cofactor(x, false);
    let l1 = lower.cofactor(x, true);
    let u0 = upper.cofactor(x, false);
    let u1 = upper.cofactor(x, true);

    // Cubes that must contain !x / x.
    let start0 = out.len();
    let cov0 = isop_rec(l0 & !u1, u0, x, out);
    for cube in &mut out[start0..] {
        cube.neg |= 1 << x;
    }
    let start1 = out.len();
    let cov1 = isop_rec(l1 & !u0, u1, x, out);
    for cube in &mut out[start1..] {
        cube.pos |= 1 << x;
    }

    // Remainder, covered without using x.
    let lnew = (l0 & !cov0) | (l1 & !cov1);
    let cov_star = isop_rec(lnew, u0 & u1, x, out);

    let xvar = Tt::var(vars, x);
    (cov0 & !xvar) | (cov1 & xvar) | cov_star
}

/// Builds `tt` over `leaves` as a two-level AND–OR (SOP) structure.
///
/// # Panics
///
/// Panics if `leaves.len() != tt.num_vars()`.
pub fn build_sop(aig: &mut Aig, tt: Tt, leaves: &[Lit]) -> Lit {
    assert_eq!(leaves.len(), tt.num_vars(), "leaf count mismatch");
    if tt.bits() == 0 {
        return Lit::FALSE;
    }
    if tt == Tt::one(tt.num_vars()) {
        return Lit::TRUE;
    }
    // Prefer the cheaper polarity: SOP of f or of !f with an inverter.
    let cover_pos = isop(tt);
    let cover_neg = isop(!tt);
    let lits_of = |c: &[Cube]| c.iter().map(|q| q.num_literals()).sum::<u32>() + c.len() as u32;
    if lits_of(&cover_neg) < lits_of(&cover_pos) {
        !build_cover(aig, &cover_neg, leaves)
    } else {
        build_cover(aig, &cover_pos, leaves)
    }
}

fn build_cover(aig: &mut Aig, cover: &[Cube], leaves: &[Lit]) -> Lit {
    let mut terms = Vec::with_capacity(cover.len());
    for cube in cover {
        let mut lits = Vec::new();
        for (i, &leaf) in leaves.iter().enumerate() {
            if (cube.pos >> i) & 1 == 1 {
                lits.push(leaf);
            }
            if (cube.neg >> i) & 1 == 1 {
                lits.push(!leaf);
            }
        }
        terms.push(balanced_and(aig, &lits));
    }
    balanced_or(aig, &terms)
}

/// Builds `tt` over `leaves` as a Shannon mux tree.
///
/// # Panics
///
/// Panics if `leaves.len() != tt.num_vars()`.
pub fn build_shannon(aig: &mut Aig, tt: Tt, leaves: &[Lit]) -> Lit {
    assert_eq!(leaves.len(), tt.num_vars(), "leaf count mismatch");
    shannon_rec(aig, tt, leaves, tt.num_vars())
}

fn shannon_rec(aig: &mut Aig, tt: Tt, leaves: &[Lit], top: usize) -> Lit {
    let vars = tt.num_vars();
    if tt.bits() == 0 {
        return Lit::FALSE;
    }
    if tt == Tt::one(vars) {
        return Lit::TRUE;
    }
    // Literal short-circuits.
    for (i, &leaf) in leaves.iter().enumerate().take(top) {
        if tt == Tt::var(vars, i) {
            return leaf;
        }
        if tt == !Tt::var(vars, i) {
            return !leaf;
        }
    }
    let x = (0..top)
        .rev()
        .find(|&i| tt.depends_on(i))
        .expect("non-constant function must have support");
    let f1 = shannon_rec(aig, tt.cofactor(x, true), leaves, x);
    let f0 = shannon_rec(aig, tt.cofactor(x, false), leaves, x);
    aig.mux(leaves[x], f1, f0)
}

/// AND of `lits` built as a balanced tree (true for empty input).
pub fn balanced_and(aig: &mut Aig, lits: &[Lit]) -> Lit {
    match lits.len() {
        0 => Lit::TRUE,
        1 => lits[0],
        n => {
            let (lo, hi) = lits.split_at(n / 2);
            let a = balanced_and(aig, lo);
            let b = balanced_and(aig, hi);
            aig.and(a, b)
        }
    }
}

/// OR of `lits` built as a balanced tree (false for empty input).
pub fn balanced_or(aig: &mut Aig, lits: &[Lit]) -> Lit {
    match lits.len() {
        0 => Lit::FALSE,
        1 => lits[0],
        n => {
            let (lo, hi) = lits.split_at(n / 2);
            let a = balanced_or(aig, lo);
            let b = balanced_or(aig, hi);
            aig.or(a, b)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cover_tt(cover: &[Cube], vars: usize) -> Tt {
        cover.iter().fold(Tt::zero(vars), |acc, c| acc | c.tt(vars))
    }

    #[test]
    fn isop_covers_exactly() {
        for vars in 1..=4usize {
            let cases: Vec<u64> = match vars {
                1 => (0..4).collect(),
                2 => (0..16).collect(),
                3 => (0..256).collect(),
                _ => (0..=u16::MAX as u64).step_by(257).collect(),
            };
            for bits in cases {
                let tt = Tt::from_bits(vars, bits);
                let cover = isop(tt);
                assert_eq!(cover_tt(&cover, vars), tt, "tt={bits:#x} vars={vars}");
            }
        }
    }

    #[test]
    fn isop_is_irredundant_for_xor3() {
        let cover = isop(Tt::xor3());
        assert_eq!(cover.len(), 4);
        assert!(cover.iter().all(|c| c.num_literals() == 3));
    }

    #[test]
    fn isop_maj_is_three_cubes() {
        let cover = isop(Tt::maj3());
        assert_eq!(cover.len(), 3);
        assert!(cover.iter().all(|c| c.num_literals() == 2));
    }

    fn check_builder(build: impl Fn(&mut Aig, Tt, &[Lit]) -> Lit) {
        for vars in 1..=4usize {
            let step = if vars == 4 { 41 } else { 1 };
            let max = 1u64 << (1 << vars);
            let mut bits = 0;
            while bits < max {
                let tt = Tt::from_bits(vars, bits);
                let mut aig = Aig::new();
                let leaves = aig.add_inputs(vars);
                let out = build(&mut aig, tt, &leaves);
                aig.add_output("f", out);
                for idx in 0..(1usize << vars) {
                    let inputs: Vec<bool> = (0..vars).map(|i| (idx >> i) & 1 == 1).collect();
                    let val = crate::sim::simulate_values(&aig, &inputs)[0];
                    assert_eq!(val, tt.eval(idx), "tt={bits:#x} vars={vars} idx={idx}");
                }
                bits += step;
            }
        }
    }

    #[test]
    fn build_sop_is_correct() {
        check_builder(build_sop);
    }

    #[test]
    fn build_shannon_is_correct() {
        check_builder(build_shannon);
    }

    #[test]
    fn builders_produce_different_shapes() {
        // Same function, different structure (node counts differ for
        // xor3 between SOP and the generator's xor-chain).
        let mut sop = Aig::new();
        let leaves = sop.add_inputs(3);
        let f = build_sop(&mut sop, Tt::xor3(), &leaves);
        sop.add_output("f", f);

        let mut chain = Aig::new();
        let l = chain.add_inputs(3);
        let g = chain.xor3(l[0], l[1], l[2]);
        chain.add_output("f", g);

        assert!(crate::sim::exhaustive_equiv_check(&sop, &chain));
        assert_ne!(sop.num_ands(), chain.num_ands());
    }

    #[test]
    fn balanced_trees() {
        let mut aig = Aig::new();
        let ins = aig.add_inputs(7);
        let a = balanced_and(&mut aig, &ins);
        aig.add_output("a", a);
        assert_eq!(aig.depth(), 3);
    }
}
