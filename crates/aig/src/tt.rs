//! Small truth tables over up to 6 variables, packed in a `u64`.
//!
//! Bit `i` of the word is the function value on the input assignment
//! whose binary encoding is `i` (variable 0 is the least significant).

use std::fmt;

/// A truth table over `vars` variables (`vars <= 6`), stored in the low
/// `2^vars` bits of a `u64`.
///
/// ```
/// use aig::tt::Tt;
/// let a = Tt::var(3, 0);
/// let b = Tt::var(3, 1);
/// let c = Tt::var(3, 2);
/// let maj = (a & b) | (a & c) | (b & c);
/// assert_eq!(maj, Tt::maj3());
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Tt {
    vars: u8,
    bits: u64,
}

impl Tt {
    /// Maximum supported variable count.
    pub const MAX_VARS: usize = 6;

    /// The constant-false table over `vars` variables.
    ///
    /// # Panics
    ///
    /// Panics if `vars > 6`.
    pub fn zero(vars: usize) -> Tt {
        assert!(vars <= Self::MAX_VARS, "truth table capped at 6 vars");
        Tt {
            vars: vars as u8,
            bits: 0,
        }
    }

    /// The constant-true table over `vars` variables.
    pub fn one(vars: usize) -> Tt {
        !Tt::zero(vars)
    }

    /// The projection of variable `i` over `vars` variables.
    ///
    /// # Panics
    ///
    /// Panics if `i >= vars` or `vars > 6`.
    pub fn var(vars: usize, i: usize) -> Tt {
        assert!(i < vars, "variable index {i} out of range for {vars} vars");
        Tt {
            bits: crate::sim::tt_var_word(i) & Tt::mask(vars),
            vars: vars as u8,
        }
    }

    /// Builds a table from raw bits.
    pub fn from_bits(vars: usize, bits: u64) -> Tt {
        assert!(vars <= Self::MAX_VARS, "truth table capped at 6 vars");
        Tt {
            vars: vars as u8,
            bits: bits & Tt::mask(vars),
        }
    }

    fn mask(vars: usize) -> u64 {
        if vars >= 6 {
            !0
        } else {
            (1u64 << (1usize << vars)) - 1
        }
    }

    /// The number of variables.
    pub fn num_vars(&self) -> usize {
        self.vars as usize
    }

    /// The raw bits (masked to `2^vars`).
    pub fn bits(&self) -> u64 {
        self.bits
    }

    /// Evaluates the function on the assignment encoded by `index`.
    pub fn eval(&self, index: usize) -> bool {
        debug_assert!(index < (1 << self.vars));
        (self.bits >> index) & 1 == 1
    }

    /// Returns `true` if the function is constant.
    pub fn is_const(&self) -> bool {
        self.bits == 0 || self.bits == Tt::mask(self.num_vars())
    }

    /// Returns `true` if the function actually depends on variable `i`.
    pub fn depends_on(&self, i: usize) -> bool {
        let pos = self.cofactor(i, true);
        let neg = self.cofactor(i, false);
        pos != neg
    }

    /// The cofactor with variable `i` fixed to `value` (still expressed
    /// over the same variable set).
    pub fn cofactor(&self, i: usize, value: bool) -> Tt {
        let vmask = crate::sim::tt_var_word(i);
        let shift = 1u32 << i;
        let bits = if value {
            let hi = self.bits & vmask;
            hi | (hi >> shift)
        } else {
            let lo = self.bits & !vmask;
            lo | (lo << shift)
        };
        Tt {
            vars: self.vars,
            bits: bits & Tt::mask(self.num_vars()),
        }
    }

    /// Swaps variables `i` and `j`.
    pub fn swap_vars(&self, i: usize, j: usize) -> Tt {
        if i == j {
            return *self;
        }
        let mut out = 0u64;
        let n = 1usize << self.vars;
        for idx in 0..n {
            if self.eval(idx) {
                let bi = (idx >> i) & 1;
                let bj = (idx >> j) & 1;
                let swapped = (idx & !((1 << i) | (1 << j))) | (bj << i) | (bi << j);
                out |= 1 << swapped;
            }
        }
        Tt {
            vars: self.vars,
            bits: out,
        }
    }

    /// Flips (negates) variable `i`.
    pub fn flip_var(&self, i: usize) -> Tt {
        let vmask = crate::sim::tt_var_word(i) & Tt::mask(self.num_vars());
        let shift = 1u32 << i;
        let hi = self.bits & vmask;
        let lo = self.bits & !vmask;
        Tt {
            vars: self.vars,
            bits: (hi >> shift) | (lo << shift),
        }
    }

    /// Applies an input permutation: variable `i` of the result reads
    /// the original variable `perm[i]`.
    pub fn permute(&self, perm: &[usize]) -> Tt {
        assert_eq!(perm.len(), self.num_vars(), "permutation arity mismatch");
        let mut out = 0u64;
        let n = 1usize << self.vars;
        for idx in 0..n {
            // Build the original assignment this result index reads.
            let mut orig = 0usize;
            for (new_var, &old_var) in perm.iter().enumerate() {
                if (idx >> new_var) & 1 == 1 {
                    orig |= 1 << old_var;
                }
            }
            if self.eval(orig) {
                out |= 1 << idx;
            }
        }
        Tt {
            vars: self.vars,
            bits: out,
        }
    }

    /// Extends the table to `vars` variables (new variables are
    /// don't-cares appended at the top).
    ///
    /// # Panics
    ///
    /// Panics if `vars` is smaller than the current count or above 6.
    pub fn extend_to(&self, vars: usize) -> Tt {
        assert!(vars >= self.num_vars() && vars <= Self::MAX_VARS);
        let mut bits = self.bits;
        let mut cur = self.num_vars();
        while cur < vars {
            bits |= bits << (1u32 << cur);
            cur += 1;
        }
        Tt {
            vars: vars as u8,
            bits: bits & Tt::mask(vars),
        }
    }

    /// The 3-input XOR table.
    pub fn xor3() -> Tt {
        let a = Tt::var(3, 0);
        let b = Tt::var(3, 1);
        let c = Tt::var(3, 2);
        a ^ b ^ c
    }

    /// The 3-input majority table.
    pub fn maj3() -> Tt {
        let a = Tt::var(3, 0);
        let b = Tt::var(3, 1);
        let c = Tt::var(3, 2);
        (a & b) | (a & c) | (b & c)
    }

    /// The 2-input XOR table.
    pub fn xor2() -> Tt {
        Tt::var(2, 0) ^ Tt::var(2, 1)
    }

    /// The 2-input AND table.
    pub fn and2() -> Tt {
        Tt::var(2, 0) & Tt::var(2, 1)
    }
}

macro_rules! impl_tt_binop {
    ($trait:ident, $method:ident, $op:tt) => {
        impl std::ops::$trait for Tt {
            type Output = Tt;
            fn $method(self, rhs: Tt) -> Tt {
                assert_eq!(self.vars, rhs.vars, "truth table arity mismatch");
                Tt {
                    vars: self.vars,
                    bits: (self.bits $op rhs.bits) & Tt::mask(self.num_vars()),
                }
            }
        }
    };
}

impl_tt_binop!(BitAnd, bitand, &);
impl_tt_binop!(BitOr, bitor, |);
impl_tt_binop!(BitXor, bitxor, ^);

impl std::ops::Not for Tt {
    type Output = Tt;
    fn not(self) -> Tt {
        Tt {
            vars: self.vars,
            bits: !self.bits & Tt::mask(self.num_vars()),
        }
    }
}

impl fmt::Debug for Tt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tt({}v, {:#x})", self.vars, self.bits)
    }
}

impl fmt::Display for Tt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let n = 1usize << self.vars;
        for i in (0..n).rev() {
            write!(f, "{}", u8::from(self.eval(i)))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn var_projections() {
        let a = Tt::var(2, 0);
        let b = Tt::var(2, 1);
        assert_eq!(a.bits(), 0b1010);
        assert_eq!(b.bits(), 0b1100);
        assert_eq!((a & b).bits(), 0b1000);
        assert_eq!((a | b).bits(), 0b1110);
        assert_eq!((a ^ b).bits(), 0b0110);
        assert_eq!((!a).bits(), 0b0101);
    }

    #[test]
    fn xor3_maj3_values() {
        let x = Tt::xor3();
        let m = Tt::maj3();
        for idx in 0..8 {
            let bits = (idx & 1) + ((idx >> 1) & 1) + ((idx >> 2) & 1);
            assert_eq!(x.eval(idx), bits % 2 == 1, "xor3 at {idx}");
            assert_eq!(m.eval(idx), bits >= 2, "maj3 at {idx}");
        }
    }

    #[test]
    fn cofactors() {
        let m = Tt::maj3();
        // maj(1,b,c) = b | c ; maj(0,b,c) = b & c
        let pos = m.cofactor(0, true);
        let neg = m.cofactor(0, false);
        let b = Tt::var(3, 1);
        let c = Tt::var(3, 2);
        assert_eq!(pos, b | c);
        assert_eq!(neg, b & c);
    }

    #[test]
    fn swap_and_flip() {
        let a = Tt::var(3, 0);
        let b = Tt::var(3, 1);
        let f = a & !b;
        assert_eq!(f.swap_vars(0, 1), b & !a);
        assert_eq!(f.flip_var(1), a & b);
        assert_eq!(f.swap_vars(0, 0), f);
        // symmetric functions are invariant under swap
        assert_eq!(Tt::maj3().swap_vars(0, 2), Tt::maj3());
        assert_eq!(Tt::xor3().swap_vars(1, 2), Tt::xor3());
    }

    #[test]
    fn permute_matches_swaps() {
        let f = Tt::var(3, 0) & !Tt::var(3, 1) | Tt::var(3, 2);
        // identity
        assert_eq!(f.permute(&[0, 1, 2]), f);
        // swapping 0,1 via permutation equals swap_vars
        assert_eq!(f.permute(&[1, 0, 2]), f.swap_vars(0, 1));
        // rotation
        let rot = f.permute(&[1, 2, 0]);
        let back = rot.permute(&[2, 0, 1]);
        assert_eq!(back, f);
    }

    #[test]
    fn extend_keeps_function() {
        let x = Tt::xor2().extend_to(4);
        for idx in 0..16 {
            let a = idx & 1 == 1;
            let b = (idx >> 1) & 1 == 1;
            assert_eq!(x.eval(idx), a ^ b);
        }
        assert!(!x.depends_on(2));
        assert!(!x.depends_on(3));
        assert!(x.depends_on(0));
    }

    #[test]
    fn depends_and_const() {
        assert!(Tt::zero(3).is_const());
        assert!(Tt::one(3).is_const());
        assert!(!Tt::maj3().is_const());
        assert!(Tt::maj3().depends_on(0));
    }
}
