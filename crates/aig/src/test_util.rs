//! Proptest strategies shared by the workspace's test suites.
//!
//! Enabled with the `test-util` feature so the strategies (and the
//! proptest shim they pull in) stay out of production builds; test
//! targets opt in via a dev-dependency on `aig` with the feature on.

use proptest::prelude::*;

use crate::{Aig, Lit};

/// Strategy: a random small combinational AIG over `n_inputs` inputs,
/// built from a generated sequence of gate instructions (AND/OR/XOR/
/// MUX/MAJ/XOR3 over randomly complemented earlier signals). The last
/// few signals become outputs with alternating polarity, so consumers
/// exercise complemented-output paths too.
///
/// This is the one definition of "an arbitrary netlist" used by the
/// frontend round-trip suites in `crates/aig`, the fingerprint suites
/// in `crates/service`, and the cross-crate properties in
/// `crates/bench` — widen it here and every suite widens together.
pub fn random_aig(n_inputs: usize, max_gates: usize) -> impl Strategy<Value = Aig> {
    let gate = (
        0u8..6,
        any::<u16>(),
        any::<u16>(),
        any::<bool>(),
        any::<bool>(),
    );
    proptest::collection::vec(gate, 1..max_gates).prop_map(move |gates| {
        let mut aig = Aig::new();
        let mut lits: Vec<Lit> = aig.add_inputs(n_inputs);
        for (op, a, b, na, nb) in gates {
            let x = lits[a as usize % lits.len()] ^ na;
            let y = lits[b as usize % lits.len()] ^ nb;
            let lit = match op {
                0 => aig.and(x, y),
                1 => aig.or(x, y),
                2 => aig.xor(x, y),
                3 => aig.mux(x, y, !x),
                4 => {
                    let z = lits[(a as usize + b as usize) % lits.len()];
                    aig.maj(x, y, z)
                }
                _ => {
                    let z = lits[(a as usize ^ b as usize) % lits.len()];
                    aig.xor3(x, y, z)
                }
            };
            lits.push(lit);
        }
        for (i, lit) in lits.iter().rev().take(3).enumerate() {
            aig.add_output(format!("y{i}"), *lit ^ (i % 2 == 1));
        }
        aig
    })
}
