//! Structural-Verilog reading and writing (gate-primitive subset).
//!
//! Supported: one `module` with a port list (plain or ANSI-style
//! `input`/`output` annotations), `input`/`output`/`wire` declarations,
//! the gate primitives `and`, `nand`, `or`, `nor`, `xor`, `xnor`
//! (n-ary), `not`, `buf` (two-port), simple alias assignments
//! (`assign y = x;`), and the constant literals `1'b0`/`1'b1` as
//! operands. Instances may appear in any order; definitions are
//! resolved to a fixpoint and combinational cycles are reported as
//! [`NetlistErrorKind::Cycle`].
//!
//! Outside the subset — vectors (`[3:0]`), `always`/`initial` blocks,
//! `reg` declarations, module instantiation, expression assigns — the
//! parser reports a typed [`NetlistErrorKind::Unsupported`] error
//! rather than guessing.
//!
//! [`write_verilog`] emits one `and` per AIG node plus `not` gates for
//! complemented fanins and `buf`/`not` drivers for outputs. Inverters
//! and buffers lower to literal complement/aliasing (no AIG nodes), so
//! `parse_verilog(write_verilog(aig))` rebuilds a node-for-node
//! identical AIG; the conformance suite asserts this.

use std::collections::{HashMap, HashSet};

use crate::netlist::{sanitize_name, NetlistError, NetlistErrorKind};
use crate::{Aig, Lit};

const FORMAT: &str = "verilog";

fn err(kind: NetlistErrorKind, line: usize, message: impl Into<String>) -> NetlistError {
    NetlistError::at(FORMAT, kind, line, message)
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// `1'b0` / `1'b1` (payload is the bit value).
    Const(bool),
    /// A bare number (only legal inside constructs the parser then
    /// rejects as unsupported, e.g. vector ranges).
    Number(String),
    /// Single punctuation character: `( ) , ; = [ ] .` etc.
    Punct(char),
}

struct Token {
    tok: Tok,
    line: usize,
}

fn tokenize(text: &str) -> Result<Vec<Token>, NetlistError> {
    let mut out = Vec::new();
    let bytes = text.as_bytes();
    let mut i = 0usize;
    let mut line = 1usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                let start = line;
                i += 2;
                loop {
                    match bytes.get(i) {
                        None => {
                            return Err(err(
                                NetlistErrorKind::Truncated,
                                start,
                                "unterminated /* comment",
                            ));
                        }
                        Some(b'\n') => {
                            line += 1;
                            i += 1;
                        }
                        Some(b'*') if bytes.get(i + 1) == Some(&b'/') => {
                            i += 2;
                            break;
                        }
                        Some(_) => i += 1,
                    }
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric()
                        || bytes[i] == b'_'
                        || bytes[i] == b'$')
                {
                    i += 1;
                }
                out.push(Token {
                    tok: Tok::Ident(text[start..i].to_owned()),
                    line,
                });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                // Sized literal: width ' base digits.
                if bytes.get(i) == Some(&b'\'') {
                    let base = bytes.get(i + 1).copied().map(|b| b.to_ascii_lowercase());
                    if base != Some(b'b') {
                        return Err(err(
                            NetlistErrorKind::Unsupported,
                            line,
                            "only 1'b0 / 1'b1 literals are supported",
                        ));
                    }
                    i += 2;
                    let dstart = i;
                    while i < bytes.len() && (bytes[i] as char).is_ascii_alphanumeric() {
                        i += 1;
                    }
                    let literal = &text[start..i];
                    let value = match (&text[start..dstart - 2], &text[dstart..i]) {
                        ("1", "0") => false,
                        ("1", "1") => true,
                        _ => {
                            return Err(err(
                                NetlistErrorKind::Unsupported,
                                line,
                                format!("literal {literal:?} (only 1'b0 / 1'b1 are supported)"),
                            ));
                        }
                    };
                    out.push(Token {
                        tok: Tok::Const(value),
                        line,
                    });
                } else {
                    out.push(Token {
                        tok: Tok::Number(text[start..i].to_owned()),
                        line,
                    });
                }
            }
            // Punctuation beyond the supported subset (`@`, `<`, …) is
            // tokenized anyway so the *parser* can name the offending
            // construct (`always`, an expression assign) instead of
            // failing on a bare character.
            '(' | ')' | ',' | ';' | '=' | '[' | ']' | ':' | '.' | '@' | '<' | '>' | '~' | '&'
            | '|' | '^' | '!' | '?' | '+' | '-' | '*' | '%' | '{' | '}' | '#' => {
                out.push(Token {
                    tok: Tok::Punct(c),
                    line,
                });
                i += 1;
            }
            other => {
                return Err(err(
                    NetlistErrorKind::Syntax,
                    line,
                    format!("unexpected character {other:?}"),
                ));
            }
        }
    }
    Ok(out)
}

/// A gate operand: a named net or a constant literal.
#[derive(Debug, Clone)]
enum Operand {
    Net(String),
    Const(bool),
}

/// One primitive instance (or alias assign), pre-resolution.
struct Instance {
    line: usize,
    kind: GateKind,
    output: String,
    inputs: Vec<Operand>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GateKind {
    And,
    Nand,
    Or,
    Nor,
    Xor,
    Xnor,
    Not,
    Buf,
}

impl GateKind {
    fn from_keyword(kw: &str) -> Option<GateKind> {
        Some(match kw {
            "and" => GateKind::And,
            "nand" => GateKind::Nand,
            "or" => GateKind::Or,
            "nor" => GateKind::Nor,
            "xor" => GateKind::Xor,
            "xnor" => GateKind::Xnor,
            "not" => GateKind::Not,
            "buf" => GateKind::Buf,
            _ => return None,
        })
    }
}

/// Token-stream cursor with one-token lookahead.
struct Cursor {
    tokens: Vec<Token>,
    pos: usize,
}

impl Cursor {
    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|t| &t.tok)
    }

    fn line(&self) -> usize {
        self.tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map(|t| t.line)
            .unwrap_or(0)
    }

    fn next(&mut self) -> Option<&Token> {
        let t = self.tokens.get(self.pos);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect_punct(&mut self, c: char) -> Result<(), NetlistError> {
        let line = self.line();
        match self.next() {
            Some(Token {
                tok: Tok::Punct(p), ..
            }) if *p == c => Ok(()),
            Some(t) => Err(err(
                NetlistErrorKind::Syntax,
                t.line,
                format!("expected {c:?}, found {:?}", t.tok),
            )),
            None => Err(err(
                NetlistErrorKind::Truncated,
                line,
                format!("expected {c:?}, found end of file"),
            )),
        }
    }

    fn expect_ident(&mut self) -> Result<(String, usize), NetlistError> {
        let line = self.line();
        match self.next() {
            Some(Token {
                tok: Tok::Ident(name),
                line,
            }) => Ok((name.clone(), *line)),
            Some(t) => Err(err(
                NetlistErrorKind::Syntax,
                t.line,
                format!("expected an identifier, found {:?}", t.tok),
            )),
            None => Err(err(
                NetlistErrorKind::Truncated,
                line,
                "expected an identifier, found end of file",
            )),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NetClass {
    Input,
    Output,
    Wire,
}

/// Parses a structural-Verilog module into an [`Aig`].
///
/// # Errors
///
/// Typed [`NetlistError`]s: [`NetlistErrorKind::Undeclared`] for
/// operands that are never declared (or outputs/wires never driven),
/// [`NetlistErrorKind::Arity`] for wrong port counts on primitives,
/// [`NetlistErrorKind::Truncated`] for files ending before
/// `endmodule`, [`NetlistErrorKind::Cycle`] for combinational loops,
/// [`NetlistErrorKind::Unsupported`] for constructs outside the
/// subset (vectors, `always`, `reg`, module instances, expression
/// assigns), and [`NetlistErrorKind::Syntax`] for the rest.
pub fn parse_verilog(text: &str) -> Result<Aig, NetlistError> {
    let tokens = tokenize(text)?;
    if tokens.is_empty() {
        return Err(err(NetlistErrorKind::Truncated, 0, "empty file"));
    }
    let mut cur = Cursor { tokens, pos: 0 };

    // module <name> [ ( ports ) ] ;
    let (kw, line) = cur.expect_ident()?;
    if kw != "module" {
        return Err(err(
            NetlistErrorKind::Syntax,
            line,
            format!("expected `module`, found {kw:?}"),
        ));
    }
    let _module_name = cur.expect_ident()?;

    // Declarations, in declaration order.
    let mut classes: HashMap<String, (NetClass, usize)> = HashMap::new();
    let mut inputs: Vec<String> = Vec::new();
    let mut outputs: Vec<String> = Vec::new();
    let mut port_names: Vec<String> = Vec::new();
    let mut declare = |name: String,
                       class: NetClass,
                       line: usize,
                       inputs: &mut Vec<String>,
                       outputs: &mut Vec<String>|
     -> Result<(), NetlistError> {
        if classes.insert(name.clone(), (class, line)).is_some() {
            return Err(err(
                NetlistErrorKind::Syntax,
                line,
                format!("net {name:?} declared twice"),
            ));
        }
        match class {
            NetClass::Input => inputs.push(name),
            NetClass::Output => outputs.push(name),
            NetClass::Wire => {}
        }
        Ok(())
    };

    if cur.peek() == Some(&Tok::Punct('(')) {
        cur.next();
        if cur.peek() != Some(&Tok::Punct(')')) {
            // Optional ANSI class annotation. Per Verilog-2001, a
            // direction keyword applies to every following port until
            // the next keyword: `(input a, b, output y)` makes `b` an
            // input too, so the running class persists across commas.
            let mut class: Option<NetClass> = None;
            loop {
                while let Some(Tok::Ident(word)) = cur.peek() {
                    match word.as_str() {
                        "input" => class = Some(NetClass::Input),
                        "output" => class = Some(NetClass::Output),
                        "wire" => {}
                        "inout" => {
                            return Err(err(
                                NetlistErrorKind::Unsupported,
                                cur.line(),
                                "inout ports are not supported",
                            ));
                        }
                        _ => break,
                    }
                    cur.next();
                }
                if cur.peek() == Some(&Tok::Punct('[')) {
                    return Err(err(
                        NetlistErrorKind::Unsupported,
                        cur.line(),
                        "vector ports are not supported (bit-blast first)",
                    ));
                }
                let (name, line) = cur.expect_ident()?;
                if let Some(class) = class {
                    declare(name.clone(), class, line, &mut inputs, &mut outputs)?;
                }
                port_names.push(name);
                match cur.peek() {
                    Some(Tok::Punct(',')) => {
                        cur.next();
                    }
                    _ => break,
                }
            }
        }
        cur.expect_punct(')')?;
    }
    cur.expect_punct(';')?;

    // Body statements.
    let mut instances: Vec<Instance> = Vec::new();
    let mut saw_endmodule = false;
    while let Some(tok) = cur.peek() {
        let line = cur.line();
        let word = match tok {
            Tok::Ident(word) => word.clone(),
            other => {
                return Err(err(
                    NetlistErrorKind::Syntax,
                    line,
                    format!("expected a statement, found {other:?}"),
                ));
            }
        };
        match word.as_str() {
            "endmodule" => {
                cur.next();
                saw_endmodule = true;
                // Anything after `endmodule` means this is not the
                // single flat module we support; dropping it silently
                // would analyze (and cache!) the wrong circuit.
                match cur.peek() {
                    None => {}
                    Some(Tok::Ident(word)) if word == "module" => {
                        return Err(err(
                            NetlistErrorKind::Unsupported,
                            cur.line(),
                            "multiple modules in one file are not supported (flatten first)",
                        ));
                    }
                    Some(tok) => {
                        return Err(err(
                            NetlistErrorKind::Syntax,
                            cur.line(),
                            format!("content after endmodule: {tok:?}"),
                        ));
                    }
                }
                break;
            }
            "input" | "output" | "wire" => {
                cur.next();
                let class = match word.as_str() {
                    "input" => NetClass::Input,
                    "output" => NetClass::Output,
                    _ => NetClass::Wire,
                };
                if cur.peek() == Some(&Tok::Punct('[')) {
                    return Err(err(
                        NetlistErrorKind::Unsupported,
                        cur.line(),
                        "vector declarations are not supported (bit-blast first)",
                    ));
                }
                loop {
                    let (name, line) = cur.expect_ident()?;
                    declare(name, class, line, &mut inputs, &mut outputs)?;
                    match cur.peek() {
                        Some(Tok::Punct(',')) => {
                            cur.next();
                        }
                        _ => break,
                    }
                }
                cur.expect_punct(';')?;
            }
            "assign" => {
                cur.next();
                let (lhs, line) = cur.expect_ident()?;
                cur.expect_punct('=')?;
                let rhs = match cur.next() {
                    Some(Token {
                        tok: Tok::Ident(name),
                        ..
                    }) => Operand::Net(name.clone()),
                    Some(Token {
                        tok: Tok::Const(v), ..
                    }) => Operand::Const(*v),
                    other => {
                        return Err(err(
                            NetlistErrorKind::Unsupported,
                            line,
                            format!(
                                "only alias assigns (`assign y = x;`) are supported, found {:?}",
                                other.map(|t| &t.tok)
                            ),
                        ));
                    }
                };
                if cur.peek() == Some(&Tok::Punct(';')) {
                    cur.next();
                } else {
                    return Err(err(
                        NetlistErrorKind::Unsupported,
                        cur.line(),
                        "expression assigns are not supported (structural gates only)",
                    ));
                }
                instances.push(Instance {
                    line,
                    kind: GateKind::Buf,
                    output: lhs,
                    inputs: vec![rhs],
                });
            }
            "always" | "initial" | "reg" => {
                return Err(err(
                    NetlistErrorKind::Unsupported,
                    line,
                    format!("`{word}` is not supported (combinational structural subset only)"),
                ));
            }
            _ => {
                let Some(kind) = GateKind::from_keyword(&word) else {
                    return Err(err(
                        NetlistErrorKind::Unsupported,
                        line,
                        format!(
                            "unknown construct {word:?} (module instantiation is not supported)"
                        ),
                    ));
                };
                cur.next();
                // Optional instance name.
                if matches!(cur.peek(), Some(Tok::Ident(_))) {
                    cur.next();
                }
                cur.expect_punct('(')?;
                let mut operands: Vec<(Operand, usize)> = Vec::new();
                loop {
                    let opline = cur.line();
                    let op = match cur.next() {
                        Some(Token {
                            tok: Tok::Ident(name),
                            ..
                        }) => Operand::Net(name.clone()),
                        Some(Token {
                            tok: Tok::Const(v), ..
                        }) => Operand::Const(*v),
                        Some(Token {
                            tok: Tok::Punct('.'),
                            line,
                        }) => {
                            return Err(err(
                                NetlistErrorKind::Unsupported,
                                *line,
                                "named port connections are not supported",
                            ));
                        }
                        other => {
                            return Err(err(
                                NetlistErrorKind::Syntax,
                                opline,
                                format!("expected an operand, found {:?}", other.map(|t| &t.tok)),
                            ));
                        }
                    };
                    operands.push((op, opline));
                    match cur.peek() {
                        Some(Tok::Punct(',')) => {
                            cur.next();
                        }
                        _ => break,
                    }
                }
                cur.expect_punct(')')?;
                cur.expect_punct(';')?;
                let needed = match kind {
                    GateKind::Not | GateKind::Buf => operands.len() == 2,
                    _ => operands.len() >= 3,
                };
                if !needed {
                    return Err(err(
                        NetlistErrorKind::Arity,
                        line,
                        format!(
                            "{word} takes {} ports, got {}",
                            match kind {
                                GateKind::Not | GateKind::Buf => "exactly 2".to_owned(),
                                _ => "at least 3".to_owned(),
                            },
                            operands.len()
                        ),
                    ));
                }
                let (out, _) = operands.remove(0);
                let output = match out {
                    Operand::Net(name) => name,
                    Operand::Const(_) => {
                        return Err(err(
                            NetlistErrorKind::Syntax,
                            line,
                            "a gate output must be a net, not a constant",
                        ));
                    }
                };
                instances.push(Instance {
                    line,
                    kind,
                    output,
                    inputs: operands.into_iter().map(|(op, _)| op).collect(),
                });
            }
        }
    }
    if !saw_endmodule {
        return Err(err(
            NetlistErrorKind::Truncated,
            cur.line(),
            "file ends before `endmodule`",
        ));
    }

    // Every header port must be classed; non-ANSI headers rely on body
    // declarations for this.
    for name in &port_names {
        if !classes.contains_key(name) {
            return Err(err(
                NetlistErrorKind::Undeclared,
                0,
                format!("port {name:?} is never declared input or output"),
            ));
        }
    }

    // Semantic checks on drivers.
    let mut driver_of: HashMap<&str, &Instance> = HashMap::new();
    for inst in &instances {
        let Some((class, _)) = classes.get(inst.output.as_str()) else {
            return Err(err(
                NetlistErrorKind::Undeclared,
                inst.line,
                format!("undeclared net {:?} driven by a gate", inst.output),
            ));
        };
        if *class == NetClass::Input {
            return Err(err(
                NetlistErrorKind::Syntax,
                inst.line,
                format!("gate drives input port {:?}", inst.output),
            ));
        }
        if driver_of.insert(&inst.output, inst).is_some() {
            return Err(err(
                NetlistErrorKind::Syntax,
                inst.line,
                format!("net {:?} has multiple drivers", inst.output),
            ));
        }
        for op in &inst.inputs {
            if let Operand::Net(name) = op {
                if !classes.contains_key(name.as_str()) {
                    return Err(err(
                        NetlistErrorKind::Undeclared,
                        inst.line,
                        format!("undeclared net {name:?} used as a gate input"),
                    ));
                }
            }
        }
    }

    // Build: inputs in declaration order, then gate fixpoint.
    let mut aig = Aig::new();
    let mut signals: HashMap<&str, Lit> = HashMap::new();
    for name in &inputs {
        let lit = aig.add_input();
        signals.insert(name, lit);
    }
    // Kahn-style worklist (linear in operand references); the ready
    // queue is a min-heap on instance index, so a topologically
    // ordered file — in particular anything `write_verilog` produced —
    // is rebuilt in file order, keeping round trips node-for-node
    // exact.
    let mut waiters: HashMap<&str, Vec<usize>> = HashMap::new();
    let mut missing: Vec<usize> = vec![0; instances.len()];
    let mut ready: std::collections::BinaryHeap<std::cmp::Reverse<usize>> =
        std::collections::BinaryHeap::new();
    for (i, inst) in instances.iter().enumerate() {
        for op in &inst.inputs {
            if let Operand::Net(name) = op {
                if !signals.contains_key(name.as_str()) {
                    missing[i] += 1;
                    waiters.entry(name).or_default().push(i);
                }
            }
        }
        if missing[i] == 0 {
            ready.push(std::cmp::Reverse(i));
        }
    }
    let mut unresolved = instances.len();
    while let Some(std::cmp::Reverse(i)) = ready.pop() {
        let inst = &instances[i];
        let fanins: Vec<Lit> = inst
            .inputs
            .iter()
            .map(|op| match op {
                Operand::Net(name) => signals[name.as_str()],
                Operand::Const(true) => Lit::TRUE,
                Operand::Const(false) => Lit::FALSE,
            })
            .collect();
        let lit = build_gate(&mut aig, inst.kind, &fanins);
        signals.insert(&inst.output, lit);
        unresolved -= 1;
        if let Some(blocked) = waiters.remove(inst.output.as_str()) {
            for w in blocked {
                missing[w] -= 1;
                if missing[w] == 0 {
                    ready.push(std::cmp::Reverse(w));
                }
            }
        }
    }
    if unresolved > 0 {
        // Diagnose across the whole stuck frontier: an operand net
        // with no driver anywhere means an undriven wire; if every
        // operand has a driver, the blockage is a cycle.
        let stuck = || {
            instances
                .iter()
                .filter(|inst| !signals.contains_key(inst.output.as_str()))
        };
        for inst in stuck() {
            let undriven = inst.inputs.iter().find_map(|op| match op {
                Operand::Net(name)
                    if !driver_of.contains_key(name.as_str())
                        && !signals.contains_key(name.as_str()) =>
                {
                    Some(name)
                }
                _ => None,
            });
            if let Some(name) = undriven {
                return Err(err(
                    NetlistErrorKind::Undeclared,
                    inst.line,
                    format!("net {name:?} is declared but never driven"),
                ));
            }
        }
        let inst = stuck().next().expect("unresolved > 0");
        return Err(err(
            NetlistErrorKind::Cycle,
            inst.line,
            format!("combinational cycle through {:?}", inst.output),
        ));
    }

    for name in &outputs {
        let lit = signals.get(name.as_str()).copied().ok_or_else(|| {
            err(
                NetlistErrorKind::Undeclared,
                0,
                format!("output {name:?} is never driven"),
            )
        })?;
        aig.add_output(name, lit);
    }
    Ok(aig)
}

/// Lowers one resolved primitive into the AIG.
fn build_gate(aig: &mut Aig, kind: GateKind, fanins: &[Lit]) -> Lit {
    match kind {
        GateKind::And => aig.and_all(fanins.iter().copied()),
        GateKind::Nand => !aig.and_all(fanins.iter().copied()),
        GateKind::Or => aig.or_all(fanins.iter().copied()),
        GateKind::Nor => !aig.or_all(fanins.iter().copied()),
        GateKind::Xor | GateKind::Xnor => {
            let mut acc = Lit::FALSE;
            for &lit in fanins {
                acc = aig.xor(acc, lit);
            }
            if kind == GateKind::Xnor {
                !acc
            } else {
                acc
            }
        }
        GateKind::Not => !fanins[0],
        GateKind::Buf => fanins[0],
    }
}

/// Serializes an AIG as a structural-Verilog module.
///
/// Inputs are named `i0, i1, …` in ordinal order; each AND gate
/// becomes `and g<var> (n<var>, …)` with `not` gates materializing
/// complemented fanins on demand; outputs are driven by `buf`/`not`.
/// Gates unreachable from the outputs are still emitted, so the round
/// trip preserves the node table exactly.
pub fn write_verilog(aig: &Aig) -> String {
    let mut used: HashSet<String> = HashSet::new();
    let mut net: Vec<String> = vec![String::new(); aig.num_nodes()];
    for (ordinal, var) in aig.inputs().iter().enumerate() {
        net[var.index()] = sanitize_name(&format!("i{ordinal}"), &mut used);
    }
    for var in aig.and_vars() {
        net[var.index()] = sanitize_name(&format!("n{}", var.0), &mut used);
    }
    let out_names: Vec<String> = aig
        .outputs()
        .iter()
        .map(|(name, _)| sanitize_name(name, &mut used))
        .collect();
    // Inverted-net names, created on demand.
    let mut inv: Vec<Option<String>> = vec![None; aig.num_nodes()];

    let mut wires: Vec<String> = Vec::new();
    let mut body = String::new();
    let operand = |lit: Lit,
                   inv: &mut Vec<Option<String>>,
                   wires: &mut Vec<String>,
                   body: &mut String,
                   used: &mut HashSet<String>|
     -> String {
        if lit == Lit::FALSE {
            return "1'b0".to_owned();
        }
        if lit == Lit::TRUE {
            return "1'b1".to_owned();
        }
        let base = net[lit.var().index()].clone();
        if !lit.is_complemented() {
            return base;
        }
        if inv[lit.var().index()].is_none() {
            let name = sanitize_name(&format!("{base}_b"), used);
            // Instance names share the identifier namespace with nets
            // in strict tools, so they go through `used` too.
            let gate = sanitize_name(&format!("gi_{base}"), used);
            body.push_str(&format!("  not {gate} ({name}, {base});\n"));
            wires.push(name.clone());
            inv[lit.var().index()] = Some(name);
        }
        inv[lit.var().index()].clone().unwrap()
    };

    for var in aig.and_vars() {
        if let crate::Node::And(a, b) = aig.node(var) {
            let fa = operand(a, &mut inv, &mut wires, &mut body, &mut used);
            let fb = operand(b, &mut inv, &mut wires, &mut body, &mut used);
            let name = net[var.index()].clone();
            let gate = sanitize_name(&format!("g{}", var.0), &mut used);
            body.push_str(&format!("  and {gate} ({name}, {fa}, {fb});\n"));
            wires.push(name);
        }
    }
    for (idx, ((_, lit), name)) in aig.outputs().iter().zip(&out_names).enumerate() {
        let gate = sanitize_name(&format!("go{idx}"), &mut used);
        if lit.is_const() {
            let value = if lit.is_complemented() {
                "1'b1"
            } else {
                "1'b0"
            };
            body.push_str(&format!("  buf {gate} ({name}, {value});\n"));
        } else if lit.is_complemented() {
            body.push_str(&format!(
                "  not {gate} ({name}, {});\n",
                net[lit.var().index()]
            ));
        } else {
            body.push_str(&format!(
                "  buf {gate} ({name}, {});\n",
                net[lit.var().index()]
            ));
        }
    }

    let input_names: Vec<String> = aig
        .inputs()
        .iter()
        .map(|v| net[v.index()].clone())
        .collect();
    let ports: Vec<String> = input_names
        .iter()
        .chain(out_names.iter())
        .cloned()
        .collect();
    let mut s = String::from("// generated by boole-aig\nmodule netlist (");
    s.push_str(&ports.join(", "));
    s.push_str(");\n");
    if !input_names.is_empty() {
        s.push_str(&format!("  input {};\n", input_names.join(", ")));
    }
    if !out_names.is_empty() {
        s.push_str(&format!("  output {};\n", out_names.join(", ")));
    }
    // One declaration per chunk keeps machine-written files diffable.
    for chunk in wires.chunks(8) {
        s.push_str(&format!("  wire {};\n", chunk.join(", ")));
    }
    s.push_str(&body);
    s.push_str("endmodule\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::exhaustive_equiv_check;

    fn full_adder_aig() -> Aig {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let c = aig.add_input();
        let (s, co) = crate::gen::full_adder(&mut aig, a, b, c);
        aig.add_output("sum", s);
        aig.add_output("carry", co);
        aig
    }

    #[test]
    fn roundtrip_preserves_structure_exactly() {
        let aig = full_adder_aig();
        let text = write_verilog(&aig);
        let parsed = parse_verilog(&text).unwrap();
        assert_eq!(parsed.nodes(), aig.nodes());
        assert_eq!(
            parsed.outputs().iter().map(|(_, l)| *l).collect::<Vec<_>>(),
            aig.outputs().iter().map(|(_, l)| *l).collect::<Vec<_>>()
        );
        assert!(exhaustive_equiv_check(&aig, &parsed));
    }

    #[test]
    fn parses_gate_primitives() {
        let text = "\
// a full adder from discrete gates
module fa (a, b, cin, sum, cout);
  input a, b, cin;
  output sum, cout;
  wire ab, ac, bc, t;
  xor s1 (sum, a, b, cin);   /* 3-input xor */
  and g1 (ab, a, b);
  and g2 (ac, a, cin);
  and g3 (bc, b, cin);
  or  c1 (cout, ab, ac, bc);
  buf unused (t, ab);
endmodule
";
        let parsed = parse_verilog(text).unwrap();
        let expect = full_adder_aig();
        assert_eq!(parsed.num_inputs(), 3);
        assert_eq!(parsed.num_outputs(), 2);
        assert!(exhaustive_equiv_check(&expect, &parsed));
        assert_eq!(parsed.outputs()[0].0, "sum");
        assert_eq!(parsed.outputs()[1].0, "cout");
    }

    #[test]
    fn ansi_ports_and_constants() {
        let text = "\
module m (input a, input b, output y, output k);
  wire t;
  nand (t, a, b, 1'b1);
  not (y, t);
  assign k = 1'b0;
endmodule
";
        let parsed = parse_verilog(text).unwrap();
        let mut expect = Aig::new();
        let a = expect.add_input();
        let b = expect.add_input();
        let y = expect.and(a, b);
        expect.add_output("y", y);
        expect.add_output("k", Lit::FALSE);
        assert!(exhaustive_equiv_check(&expect, &parsed));
    }

    #[test]
    fn out_of_order_instances_resolve() {
        let text = "\
module m (a, b, c, y);
  input a, b, c;
  output y;
  wire t;
  and g2 (y, t, c);
  and g1 (t, a, b);
endmodule
";
        let parsed = parse_verilog(text).unwrap();
        assert_eq!(parsed.num_ands(), 2);
    }

    #[test]
    fn ansi_direction_keyword_carries_over_following_ports() {
        // Verilog-2001: `input a, b` in the header classes both ports.
        let text = "\
module m (input a, b, output y);
  and g (y, a, b);
endmodule
";
        let parsed = parse_verilog(text).unwrap();
        assert_eq!(parsed.num_inputs(), 2);
        assert_eq!(parsed.num_outputs(), 1);
        let mut expect = Aig::new();
        let a = expect.add_input();
        let b = expect.add_input();
        let y = expect.and(a, b);
        expect.add_output("y", y);
        assert!(exhaustive_equiv_check(&expect, &parsed));
    }

    #[test]
    fn instance_names_never_collide_with_net_names() {
        // Verilog identifiers share one namespace in strict tools; an
        // output deliberately named like a default instance name must
        // not produce a duplicate identifier.
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let x = aig.and(a, b); // var 3: net n3, default instance g3
        aig.add_output("g3", x);
        aig.add_output("go1", !x);
        let text = write_verilog(&aig);

        let mut nets: Vec<String> = Vec::new();
        let mut instances: Vec<String> = Vec::new();
        for line in text.lines() {
            let t = line.trim();
            for decl in ["input ", "output ", "wire "] {
                if let Some(rest) = t.strip_prefix(decl) {
                    nets.extend(
                        rest.trim_end_matches(';')
                            .split(',')
                            .map(|n| n.trim().to_owned()),
                    );
                }
            }
            for gate in ["and ", "not ", "buf "] {
                if let Some(rest) = t.strip_prefix(gate) {
                    instances.push(rest.split('(').next().unwrap().trim().to_owned());
                }
            }
        }
        let mut seen: std::collections::HashSet<&str> = nets.iter().map(String::as_str).collect();
        assert_eq!(seen.len(), nets.len(), "duplicate net name in:\n{text}");
        for inst in &instances {
            assert!(
                seen.insert(inst),
                "identifier {inst:?} used twice in:\n{text}"
            );
        }
        // And the file still round-trips.
        let parsed = parse_verilog(&text).unwrap();
        assert!(exhaustive_equiv_check(&aig, &parsed));
    }

    #[test]
    fn multiple_modules_are_rejected_not_silently_dropped() {
        // Gate-level dumps often put helper modules first; parsing
        // only the first module would analyze the wrong circuit.
        let text = "\
module helper (a, y);
  input a;
  output y;
  buf g (y, a);
endmodule
module top (a, b, y);
  input a, b;
  output y;
  and g (y, a, b);
endmodule
";
        let e = parse_verilog(text).unwrap_err();
        assert_eq!(e.kind, NetlistErrorKind::Unsupported, "{e}");
        let trailing =
            "module m (a, y);\n input a;\n output y;\n buf g (y, a);\nendmodule\ngarbage\n";
        let e = parse_verilog(trailing).unwrap_err();
        assert_eq!(e.kind, NetlistErrorKind::Syntax, "{e}");
    }

    #[test]
    fn acyclic_netlist_with_undriven_upstream_wire_is_not_a_cycle() {
        // g2 is stuck only because g1 is stuck on the undriven `w`;
        // the diagnosis must scan past g2 and name the real cause.
        let text = "\
module m (a, y);
  input a;
  output y;
  wire w, x;
  and g2 (y, x, a);
  and g1 (x, w, a);
endmodule
";
        let e = parse_verilog(text).unwrap_err();
        assert_eq!(e.kind, NetlistErrorKind::Undeclared, "{e}");
        assert!(e.message.contains("\"w\""), "{e}");
    }

    #[test]
    fn typed_negative_paths() {
        // Truncated: no endmodule.
        let e = parse_verilog("module m (a);\n  input a;\n").unwrap_err();
        assert_eq!(e.kind, NetlistErrorKind::Truncated);
        // Truncated: unterminated comment.
        let e = parse_verilog("module m (); /* never closed").unwrap_err();
        assert_eq!(e.kind, NetlistErrorKind::Truncated);
        // Empty file.
        let e = parse_verilog("").unwrap_err();
        assert_eq!(e.kind, NetlistErrorKind::Truncated);
        // Undeclared gate input.
        let e = parse_verilog(
            "module m (a, y);\n input a;\n output y;\n and g (y, a, ghost);\nendmodule\n",
        )
        .unwrap_err();
        assert_eq!(e.kind, NetlistErrorKind::Undeclared);
        // Undriven wire.
        let e = parse_verilog(
            "module m (a, y);\n input a;\n output y;\n wire w;\n and g (y, a, w);\nendmodule\n",
        )
        .unwrap_err();
        assert_eq!(e.kind, NetlistErrorKind::Undeclared);
        // Undriven output.
        let e = parse_verilog("module m (a, y);\n input a;\n output y;\nendmodule\n").unwrap_err();
        assert_eq!(e.kind, NetlistErrorKind::Undeclared);
        // Arity: not with three ports.
        let e = parse_verilog(
            "module m (a, b, y);\n input a, b;\n output y;\n not g (y, a, b);\nendmodule\n",
        )
        .unwrap_err();
        assert_eq!(e.kind, NetlistErrorKind::Arity);
        // Arity: and with a single input.
        let e =
            parse_verilog("module m (a, y);\n input a;\n output y;\n and g (y, a);\nendmodule\n")
                .unwrap_err();
        assert_eq!(e.kind, NetlistErrorKind::Arity);
        // Sequential constructs.
        let e = parse_verilog("module m (a, y);\n input a;\n output y;\n reg r;\nendmodule\n")
            .unwrap_err();
        assert_eq!(e.kind, NetlistErrorKind::Unsupported);
        // Vectors.
        let e = parse_verilog("module m (a);\n input [3:0] a;\nendmodule\n").unwrap_err();
        assert_eq!(e.kind, NetlistErrorKind::Unsupported);
        // Multiple drivers.
        let e = parse_verilog(
            "module m (a, y);\n input a;\n output y;\n buf g1 (y, a);\n not g2 (y, a);\nendmodule\n",
        )
        .unwrap_err();
        assert_eq!(e.kind, NetlistErrorKind::Syntax);
        // Cycle.
        let e = parse_verilog(
            "module m (a, y);\n input a;\n output y;\n wire w;\n and g1 (w, y, a);\n and g2 (y, w, a);\nendmodule\n",
        )
        .unwrap_err();
        assert_eq!(e.kind, NetlistErrorKind::Cycle);
    }
}
