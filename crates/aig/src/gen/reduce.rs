//! Multi-operand carry-save reduction: the shared core of the array
//! (CSA) and Booth multiplier generators.

use super::adders::{full_adder, half_adder};
use crate::{Aig, Lit};

/// Partial-product columns: `cols[w]` holds the literals of weight `w`.
#[derive(Debug, Clone, Default)]
pub struct Columns {
    cols: Vec<Vec<Lit>>,
}

impl Columns {
    /// Creates an empty column set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `lit` at weight `weight`.
    pub fn push(&mut self, weight: usize, lit: Lit) {
        if lit == Lit::FALSE {
            return;
        }
        if self.cols.len() <= weight {
            self.cols.resize(weight + 1, Vec::new());
        }
        self.cols[weight].push(lit);
    }

    /// Adds a little-endian row starting at `offset`.
    pub fn push_row(&mut self, offset: usize, row: &[Lit]) {
        for (i, &lit) in row.iter().enumerate() {
            self.push(offset + i, lit);
        }
    }

    /// Number of columns (max weight + 1).
    pub fn width(&self) -> usize {
        self.cols.len()
    }

    /// The maximum column height.
    pub fn max_height(&self) -> usize {
        self.cols.iter().map(|c| c.len()).max().unwrap_or(0)
    }

    /// Access to column `w` (empty slice if out of range).
    pub fn column(&self, w: usize) -> &[Lit] {
        self.cols.get(w).map_or(&[], |c| c.as_slice())
    }
}

/// How to schedule the carry-save reduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceStyle {
    /// Row-by-row accumulation — the classic *array* (CSA) multiplier
    /// structure. For an `n`-bit square array this instantiates exactly
    /// `n(n−2)` FAs and `n` HAs including the final ripple stage,
    /// matching the paper's `(n−1)²−1` upper bound.
    Array,
    /// Column-parallel Dadda/Wallace-style tree reduction: keep
    /// compressing every column with FAs/HAs until height ≤ 2.
    Wallace,
}

/// A full-adder instance recorded by the generator (ground truth for
/// the experiments: these are the blocks reasoning tools try to
/// recover).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaInstance {
    /// The three input literals.
    pub inputs: [Lit; 3],
    /// The sum literal.
    pub sum: Lit,
    /// The carry literal.
    pub carry: Lit,
}

/// A half-adder instance recorded by the generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HaInstance {
    /// The two input literals.
    pub inputs: [Lit; 2],
    /// The sum literal.
    pub sum: Lit,
    /// The carry literal.
    pub carry: Lit,
}

/// Statistics from a reduction, including the instantiated blocks.
#[derive(Debug, Clone, Default)]
pub struct ReduceStats {
    /// Full adders instantiated.
    pub full_adders: usize,
    /// Half adders instantiated.
    pub half_adders: usize,
    /// The recorded FA instances.
    pub fa_blocks: Vec<FaInstance>,
    /// The recorded HA instances.
    pub ha_blocks: Vec<HaInstance>,
}

impl ReduceStats {
    fn record_fa(&mut self, inputs: [Lit; 3], sum: Lit, carry: Lit) {
        self.full_adders += 1;
        self.fa_blocks.push(FaInstance { inputs, sum, carry });
    }

    fn record_ha(&mut self, inputs: [Lit; 2], sum: Lit, carry: Lit) {
        self.half_adders += 1;
        self.ha_blocks.push(HaInstance { inputs, sum, carry });
    }
}

/// Reduces `columns` to two rows (sum, carry-save) and then to a single
/// row with a final ripple chain; returns the little-endian result bits
/// truncated/extended to `out_width`.
pub fn reduce_columns(
    aig: &mut Aig,
    columns: Columns,
    out_width: usize,
    style: ReduceStyle,
    stats: &mut ReduceStats,
) -> Vec<Lit> {
    let reduced = match style {
        ReduceStyle::Array => reduce_array(aig, columns, stats),
        ReduceStyle::Wallace => reduce_wallace(aig, columns, stats),
    };
    ripple_sum(aig, reduced, out_width, stats)
}

/// Row-by-row accumulation. We repeatedly compress each column to at
/// most two entries before moving to the next weight, mimicking the
/// diagonal carry flow of an array multiplier.
fn reduce_array(aig: &mut Aig, mut columns: Columns, stats: &mut ReduceStats) -> Columns {
    // Keep compressing the lowest column with height > 2.
    loop {
        let Some(w) = (0..columns.width()).find(|&w| columns.column(w).len() > 2) else {
            return columns;
        };
        let col = &mut columns.cols[w];
        // Take three operands (FIFO order keeps the array shape: earlier
        // rows combine first).
        let a = col.remove(0);
        let b = col.remove(0);
        let c = col.remove(0);
        let (s, co) = full_adder(aig, a, b, c);
        stats.record_fa([a, b, c], s, co);
        columns.cols[w].insert(0, s);
        columns.push(w + 1, co);
    }
}

/// Column-parallel reduction: each pass compresses every column with
/// FAs (taking 3) and HAs (taking 2 when exactly 3 remain... classic
/// Dadda would be height-driven; we use the simple Wallace discipline).
fn reduce_wallace(aig: &mut Aig, mut columns: Columns, stats: &mut ReduceStats) -> Columns {
    while columns.max_height() > 2 {
        let mut next = Columns::new();
        for w in 0..columns.width() {
            let col = std::mem::take(&mut columns.cols[w]);
            let mut i = 0;
            while col.len() - i >= 3 {
                let (s, co) = full_adder(aig, col[i], col[i + 1], col[i + 2]);
                stats.record_fa([col[i], col[i + 1], col[i + 2]], s, co);
                next.push(w, s);
                next.push(w + 1, co);
                i += 3;
            }
            if col.len() - i == 2 {
                let (s, co) = half_adder(aig, col[i], col[i + 1]);
                stats.record_ha([col[i], col[i + 1]], s, co);
                next.push(w, s);
                next.push(w + 1, co);
                i += 2;
            }
            while i < col.len() {
                next.push(w, col[i]);
                i += 1;
            }
        }
        columns = next;
    }
    columns
}

/// Sums columns of height ≤ 2 with a ripple chain of HAs/FAs; returns
/// `out_width` little-endian bits.
///
/// # Panics
///
/// Panics if any column has more than two entries.
pub fn ripple_sum(
    aig: &mut Aig,
    columns: Columns,
    out_width: usize,
    stats: &mut ReduceStats,
) -> Vec<Lit> {
    let mut out = Vec::with_capacity(out_width);
    let mut carry = Lit::FALSE;
    for w in 0..out_width {
        let col = columns.column(w);
        assert!(col.len() <= 2, "column {w} not reduced: {}", col.len());
        let bit = match (col.len(), carry) {
            (0, c) => {
                carry = Lit::FALSE;
                c
            }
            (1, c) if c == Lit::FALSE => col[0],
            (1, c) => {
                let (s, co) = half_adder(aig, col[0], c);
                stats.record_ha([col[0], c], s, co);
                carry = co;
                s
            }
            (2, c) if c == Lit::FALSE => {
                let (s, co) = half_adder(aig, col[0], col[1]);
                stats.record_ha([col[0], col[1]], s, co);
                carry = co;
                s
            }
            (2, c) => {
                let (s, co) = full_adder(aig, col[0], col[1], c);
                stats.record_fa([col[0], col[1], c], s, co);
                carry = co;
                s
            }
            _ => unreachable!(),
        };
        out.push(bit);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::eval_u128;

    fn sum_three(style: ReduceStyle) {
        // Three 4-bit operands summed via column reduction.
        let mut aig = Aig::new();
        let a = aig.add_inputs(4);
        let b = aig.add_inputs(4);
        let c = aig.add_inputs(4);
        let mut cols = Columns::new();
        cols.push_row(0, &a);
        cols.push_row(0, &b);
        cols.push_row(0, &c);
        let mut stats = ReduceStats::default();
        let out = reduce_columns(&mut aig, cols, 6, style, &mut stats);
        for (i, o) in out.iter().enumerate() {
            aig.add_output(format!("s{i}"), *o);
        }
        assert!(stats.full_adders > 0);
        for (x, y, z) in [(0u128, 0, 0), (15, 15, 15), (7, 9, 3), (8, 8, 1)] {
            let input = x | (y << 4) | (z << 8);
            assert_eq!(eval_u128(&aig, input), x + y + z, "{style:?} {x}+{y}+{z}");
        }
    }

    #[test]
    fn array_reduce_sums_correctly() {
        sum_three(ReduceStyle::Array);
    }

    #[test]
    fn wallace_reduce_sums_correctly() {
        sum_three(ReduceStyle::Wallace);
    }

    #[test]
    fn columns_skip_false() {
        let mut cols = Columns::new();
        cols.push(3, Lit::FALSE);
        assert_eq!(cols.width(), 0);
    }
}

/// Dadda-style reduction: height-driven column compression that only
/// places as many FAs/HAs per stage as needed to reach the next Dadda
/// height (…, 6, 4, 3, 2), minimizing adder count compared to the
/// eager Wallace discipline.
pub fn reduce_dadda(aig: &mut Aig, mut columns: Columns, stats: &mut ReduceStats) -> Columns {
    // Dadda height sequence d_1 = 2, d_{j+1} = floor(1.5 d_j).
    let mut targets = vec![2usize];
    while *targets.last().expect("non-empty") < columns.max_height() {
        let last = *targets.last().expect("non-empty");
        targets.push(last * 3 / 2);
    }
    while columns.max_height() > 2 {
        let target = *targets
            .iter()
            .rev()
            .find(|&&t| t < columns.max_height())
            .expect("target exists below current height");
        let mut next = Columns::new();
        let mut carries_into: Vec<usize> = vec![0; columns.width() + 2];
        for w in 0..columns.width() {
            let col = std::mem::take(&mut columns.cols[w]);
            let mut remaining = col.len() + carries_into[w];
            let mut i = 0;
            // Compress only while the column (plus incoming carries)
            // exceeds the target height.
            while remaining > target && col.len() - i >= 3 {
                let (s, co) = full_adder(aig, col[i], col[i + 1], col[i + 2]);
                stats.record_fa([col[i], col[i + 1], col[i + 2]], s, co);
                next.push(w, s);
                next.push(w + 1, co);
                carries_into[w + 1] += 1;
                i += 3;
                remaining -= 2;
            }
            if remaining > target && col.len() - i >= 2 {
                let (s, co) = half_adder(aig, col[i], col[i + 1]);
                stats.record_ha([col[i], col[i + 1]], s, co);
                next.push(w, s);
                next.push(w + 1, co);
                carries_into[w + 1] += 1;
                i += 2;
            }
            while i < col.len() {
                next.push(w, col[i]);
                i += 1;
            }
        }
        columns = next;
    }
    columns
}

#[cfg(test)]
mod dadda_tests {
    use super::*;
    use crate::sim::eval_u128;

    #[test]
    fn dadda_reduce_sums_correctly() {
        let mut aig = Aig::new();
        let a = aig.add_inputs(4);
        let b = aig.add_inputs(4);
        let c = aig.add_inputs(4);
        let d = aig.add_inputs(4);
        let mut cols = Columns::new();
        for row in [&a, &b, &c, &d] {
            cols.push_row(0, row);
        }
        let mut stats = ReduceStats::default();
        let reduced = reduce_dadda(&mut aig, cols, &mut stats);
        let out = ripple_sum(&mut aig, reduced, 6, &mut stats);
        for (i, o) in out.iter().enumerate() {
            aig.add_output(format!("s{i}"), *o);
        }
        for (w, x, y, z) in [(0u128, 0, 0, 0), (15, 15, 15, 15), (7, 9, 3, 12)] {
            let input = w | (x << 4) | (y << 8) | (z << 12);
            assert_eq!(eval_u128(&aig, input), w + x + y + z);
        }
    }

    #[test]
    fn dadda_uses_fewer_or_equal_adders_than_wallace() {
        let build = |style: fn(&mut Aig, Columns, &mut ReduceStats) -> Columns| {
            let mut aig = Aig::new();
            let a = aig.add_inputs(6);
            let b = aig.add_inputs(6);
            let mut cols = Columns::new();
            for (i, &bi) in b.iter().enumerate() {
                for (j, &aj) in a.iter().enumerate() {
                    let pp = aig.and(aj, bi);
                    cols.push(i + j, pp);
                }
            }
            let mut stats = ReduceStats::default();
            let reduced = style(&mut aig, cols, &mut stats);
            let _ = ripple_sum(&mut aig, reduced, 12, &mut stats);
            stats.full_adders + stats.half_adders
        };
        let dadda = build(reduce_dadda);
        let wallace = build(reduce_wallace);
        assert!(dadda <= wallace, "dadda {dadda} vs wallace {wallace}");
    }
}
