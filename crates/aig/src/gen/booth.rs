//! Signed radix-4 Booth-encoded multipliers.

use super::reduce::{reduce_columns, Columns, ReduceStats, ReduceStyle};
use super::{GenStats, Multiplier};
use crate::{Aig, Lit};

/// Generates an `n × n` signed (two's complement) radix-4
/// Booth-encoded multiplier with `2n` outputs — the paper's "Booth
/// multiplier" benchmark family.
///
/// Each Booth digit selects among `{0, ±A, ±2A}`; negative selections
/// use one's complement plus a correction bit. Partial products are
/// sign-extended to the full width and reduced with the array-style
/// carry-save reducer.
///
/// # Panics
///
/// Panics if `n < 2` or `n` is odd.
///
/// ```
/// use aig::gen::{booth_multiplier, pack_operands};
/// use aig::sim::eval_u128;
/// let aig = booth_multiplier(4);
/// // -3 * 5 = -15; two's complement over 8 bits = 0xF1.
/// let product = eval_u128(&aig, pack_operands(4, 0b1101, 0b0101));
/// assert_eq!(product, 0xF1);
/// ```
pub fn booth_multiplier(n: usize) -> Aig {
    booth_multiplier_with_stats(n).aig
}

/// Like [`booth_multiplier`], also returning FA/HA instantiation
/// counts.
pub fn booth_multiplier_with_stats(n: usize) -> Multiplier {
    assert!(n >= 2, "multiplier width must be at least 2");
    assert!(
        n.is_multiple_of(2),
        "booth multiplier requires an even width"
    );
    let mut aig = Aig::new();
    let a = aig.add_inputs(n);
    let b = aig.add_inputs(n);
    let width = 2 * n;

    let mut cols = Columns::new();
    let digits = n / 2;
    for i in 0..digits {
        // Booth window: (b[2i+1], b[2i], b[2i-1]) with b[-1] = 0.
        let b_lo = if i == 0 { Lit::FALSE } else { b[2 * i - 1] };
        let b_mid = b[2 * i];
        let b_hi = b[2 * i + 1];

        // single: |digit| == 1 ; double: |digit| == 2 ; neg: digit < 0.
        let single = aig.xor(b_mid, b_lo);
        let eq = aig.xnor(b_mid, b_lo); // b_mid == b_lo
                                        // When b_mid == b_lo the digit is ±2 iff b_hi differs from
                                        // them, else 0.
        let hi_diff = aig.xor(b_hi, b_mid);
        let double = aig.and(eq, hi_diff);
        let neg = b_hi;

        // Partial product bits before negation: n + 1 bits.
        // bit j reads a[j] (single) or a[j-1] (double); a is
        // sign-extended by one bit for the single case.
        let mut row: Vec<Lit> = Vec::with_capacity(width - 2 * i);
        for j in 0..=n {
            let a_single = if j < n { a[j] } else { a[n - 1] };
            let a_double = if j == 0 {
                Lit::FALSE
            } else if j - 1 < n {
                a[j - 1]
            } else {
                a[n - 1]
            };
            let s_term = aig.and(single, a_single);
            let d_term = aig.and(double, a_double);
            let bit = aig.or(s_term, d_term);
            row.push(aig.xor(bit, neg));
        }
        // Sign-extend the (possibly complemented) row to full width.
        let msb = *row.last().expect("row is non-empty");
        while row.len() < width - 2 * i {
            row.push(msb);
        }
        cols.push_row(2 * i, &row);
        // Two's complement correction: +neg at weight 2i.
        cols.push(2 * i, neg);
    }

    let mut stats = ReduceStats::default();
    let out = reduce_columns(&mut aig, cols, width, ReduceStyle::Array, &mut stats);
    for (i, bit) in out.iter().enumerate() {
        aig.add_output(format!("p{i}"), *bit);
    }
    Multiplier {
        aig,
        stats: GenStats {
            full_adders: stats.full_adders,
            half_adders: stats.half_adders,
        },
        fas: stats.fa_blocks,
        has: stats.ha_blocks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{pack_operands, sign_extend};
    use crate::sim::eval_u128;

    fn check_signed(aig: &Aig, n: usize, a: u128, b: u128) {
        let product = eval_u128(aig, pack_operands(n, a, b));
        let sa = sign_extend(a, n);
        let sb = sign_extend(b, n);
        let mask = (1u128 << (2 * n)) - 1;
        let expect = ((sa * sb) as u128) & mask;
        assert_eq!(
            product, expect,
            "{sa} * {sb} (n={n}): got {product:#x}, want {expect:#x}"
        );
    }

    #[test]
    fn booth_4bit_exhaustive() {
        let aig = booth_multiplier(4);
        for a in 0..16u128 {
            for b in 0..16u128 {
                check_signed(&aig, 4, a, b);
            }
        }
    }

    #[test]
    fn booth_6bit_exhaustive() {
        let aig = booth_multiplier(6);
        for a in 0..64u128 {
            for b in 0..64u128 {
                check_signed(&aig, 6, a, b);
            }
        }
    }

    #[test]
    fn booth_larger_widths_spot_checks() {
        for n in [8usize, 12, 16] {
            let aig = booth_multiplier(n);
            let max = (1u128 << n) - 1;
            let min_neg = 1u128 << (n - 1);
            for (a, b) in [
                (0, 0),
                (1, max),
                (max, max),
                (min_neg, min_neg),
                (min_neg, 1),
                (max / 3, min_neg | 5),
            ] {
                check_signed(&aig, n, a, b);
            }
        }
    }

    #[test]
    fn booth_has_adder_tree() {
        let m = booth_multiplier_with_stats(8);
        assert!(m.stats.full_adders > 0);
        // Booth halves the partial-product rows, so it needs fewer FAs
        // than the square array.
        let csa = super::super::csa::csa_multiplier_with_stats(8);
        assert!(m.stats.full_adders < csa.stats.full_adders);
    }

    #[test]
    #[should_panic(expected = "even width")]
    fn booth_rejects_odd_width() {
        let _ = booth_multiplier(5);
    }
}
