//! Adder building blocks, instantiated with the canonical gate shapes
//! (XOR chains for sums, AND–OR majority for carries) that pre-mapping
//! netlists exhibit.

use crate::{Aig, Lit};

/// Builds a half adder; returns `(sum, carry)`.
pub fn half_adder(aig: &mut Aig, a: Lit, b: Lit) -> (Lit, Lit) {
    let sum = aig.xor(a, b);
    let carry = aig.and(a, b);
    (sum, carry)
}

/// Builds a full adder; returns `(sum, carry)`.
///
/// The sum is `a ⊕ b ⊕ c` as an XOR chain; the carry is the majority
/// `(a&b)|(a&c)|(b&c)` — exactly the "exact FA" shape BoolE counts.
pub fn full_adder(aig: &mut Aig, a: Lit, b: Lit, c: Lit) -> (Lit, Lit) {
    let sum = aig.xor3(a, b, c);
    let carry = aig.maj(a, b, c);
    (sum, carry)
}

/// Builds an `n`-bit ripple-carry adder over little-endian operands;
/// returns `n` sum bits plus the carry-out.
///
/// # Panics
///
/// Panics if the operand widths differ.
pub fn ripple_carry_adder(aig: &mut Aig, a: &[Lit], b: &[Lit], cin: Lit) -> (Vec<Lit>, Lit) {
    assert_eq!(a.len(), b.len(), "operand widths differ");
    let mut carry = cin;
    let mut sums = Vec::with_capacity(a.len());
    for (&ai, &bi) in a.iter().zip(b) {
        let (s, c) = full_adder(aig, ai, bi, carry);
        sums.push(s);
        carry = c;
    }
    (sums, carry)
}

/// One level of 3:2 carry-save reduction over three equal-width
/// operands; returns `(sums, carries)` where `carries` is shifted up by
/// one position (its entry `i` has weight `i + 1`).
///
/// # Panics
///
/// Panics if the operand widths differ.
pub fn carry_save_adder_3(aig: &mut Aig, a: &[Lit], b: &[Lit], c: &[Lit]) -> (Vec<Lit>, Vec<Lit>) {
    assert!(
        a.len() == b.len() && b.len() == c.len(),
        "operand widths differ"
    );
    let mut sums = Vec::with_capacity(a.len());
    let mut carries = Vec::with_capacity(a.len());
    for i in 0..a.len() {
        let (s, co) = full_adder(aig, a[i], b[i], c[i]);
        sums.push(s);
        carries.push(co);
    }
    (sums, carries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::eval_u128;

    #[test]
    fn half_adder_semantics() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let (s, c) = half_adder(&mut aig, a, b);
        aig.add_output("s", s);
        aig.add_output("c", c);
        for x in 0u128..4 {
            let out = eval_u128(&aig, x);
            let expect = (x & 1) + ((x >> 1) & 1);
            assert_eq!(out, expect);
        }
    }

    #[test]
    fn full_adder_semantics() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let c = aig.add_input();
        let (s, co) = full_adder(&mut aig, a, b, c);
        aig.add_output("s", s);
        aig.add_output("c", co);
        for x in 0u128..8 {
            let out = eval_u128(&aig, x);
            let expect = (x & 1) + ((x >> 1) & 1) + ((x >> 2) & 1);
            assert_eq!(out, expect);
        }
    }

    #[test]
    fn ripple_adder_semantics() {
        let mut aig = Aig::new();
        let a = aig.add_inputs(5);
        let b = aig.add_inputs(5);
        let (sums, cout) = ripple_carry_adder(&mut aig, &a, &b, Lit::FALSE);
        for (i, s) in sums.iter().enumerate() {
            aig.add_output(format!("s{i}"), *s);
        }
        aig.add_output("cout", cout);
        for x in [0u128, 1, 7, 13, 31] {
            for y in [0u128, 2, 5, 17, 31] {
                let input = x | (y << 5);
                assert_eq!(eval_u128(&aig, input), x + y, "x={x} y={y}");
            }
        }
    }

    #[test]
    fn csa3_reduces_three_operands() {
        let mut aig = Aig::new();
        let a = aig.add_inputs(4);
        let b = aig.add_inputs(4);
        let c = aig.add_inputs(4);
        let (sums, carries) = carry_save_adder_3(&mut aig, &a, &b, &c);
        for (i, s) in sums.iter().enumerate() {
            aig.add_output(format!("s{i}"), *s);
        }
        for (i, co) in carries.iter().enumerate() {
            aig.add_output(format!("c{i}"), *co);
        }
        // sum + (carry << 1) == a + b + c
        for (x, y, z) in [(3u128, 5, 9), (15, 15, 15), (0, 7, 8)] {
            let input = x | (y << 4) | (z << 8);
            let out = eval_u128(&aig, input);
            let sums_v = out & 0xF;
            let carries_v = (out >> 4) & 0xF;
            assert_eq!(sums_v + (carries_v << 1), x + y + z);
        }
    }
}

/// Builds an `n`-bit carry-lookahead adder (CLA) over little-endian
/// operands; returns `n` sum bits plus the carry-out.
///
/// Generate/propagate signals are computed per bit and carries are
/// produced by the unrolled lookahead recurrence
/// `c_{i+1} = g_i | (p_i & c_i)` flattened into two-level form — a
/// structurally different final adder from the ripple chain, useful
/// for exercising reasoning tools on heterogeneous adder styles.
///
/// # Panics
///
/// Panics if the operand widths differ.
pub fn carry_lookahead_adder(aig: &mut Aig, a: &[Lit], b: &[Lit], cin: Lit) -> (Vec<Lit>, Lit) {
    assert_eq!(a.len(), b.len(), "operand widths differ");
    let n = a.len();
    let mut g = Vec::with_capacity(n);
    let mut p = Vec::with_capacity(n);
    for i in 0..n {
        g.push(aig.and(a[i], b[i]));
        p.push(aig.xor(a[i], b[i]));
    }
    // Unrolled lookahead: c_{i+1} = g_i | p_i·g_{i-1} | … | p_i…p_0·cin.
    let mut carries = Vec::with_capacity(n + 1);
    carries.push(cin);
    for i in 0..n {
        let mut terms = vec![g[i]];
        let mut prefix = p[i];
        for j in (0..i).rev() {
            terms.push(aig.and(prefix, g[j]));
            prefix = aig.and(prefix, p[j]);
        }
        terms.push(aig.and(prefix, cin));
        let c = aig.or_all(terms);
        carries.push(c);
    }
    let sums = (0..n).map(|i| aig.xor(p[i], carries[i])).collect();
    (sums, carries[n])
}

#[cfg(test)]
mod cla_tests {
    use super::*;
    use crate::sim::eval_u128;

    #[test]
    fn cla_semantics() {
        let mut aig = Aig::new();
        let a = aig.add_inputs(6);
        let b = aig.add_inputs(6);
        let (sums, cout) = carry_lookahead_adder(&mut aig, &a, &b, crate::Lit::FALSE);
        for (i, s) in sums.iter().enumerate() {
            aig.add_output(format!("s{i}"), *s);
        }
        aig.add_output("cout", cout);
        for x in [0u128, 1, 13, 37, 63] {
            for y in [0u128, 7, 21, 63] {
                let input = x | (y << 6);
                assert_eq!(eval_u128(&aig, input), x + y, "{x}+{y}");
            }
        }
    }

    #[test]
    fn cla_matches_ripple() {
        let mut cla = Aig::new();
        let a = cla.add_inputs(5);
        let b = cla.add_inputs(5);
        let (s, c) = carry_lookahead_adder(&mut cla, &a, &b, crate::Lit::FALSE);
        for (i, x) in s.iter().enumerate() {
            cla.add_output(format!("s{i}"), *x);
        }
        cla.add_output("c", c);

        let mut rc = Aig::new();
        let a = rc.add_inputs(5);
        let b = rc.add_inputs(5);
        let (s, c) = ripple_carry_adder(&mut rc, &a, &b, crate::Lit::FALSE);
        for (i, x) in s.iter().enumerate() {
            rc.add_output(format!("s{i}"), *x);
        }
        rc.add_output("c", c);
        assert!(crate::sim::exhaustive_equiv_check(&cla, &rc));
    }
}
