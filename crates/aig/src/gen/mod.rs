//! Arithmetic benchmark generators: the multiplier families evaluated
//! in the BoolE paper plus their adder building blocks.
//!
//! All generators return plain [`Aig`]s with named outputs, and all are
//! verified against integer semantics in the test suite.

mod adders;
mod booth;
mod csa;
mod reduce;

pub use adders::{
    carry_lookahead_adder, carry_save_adder_3, full_adder, half_adder, ripple_carry_adder,
};
pub use booth::{booth_multiplier, booth_multiplier_with_stats};
pub use csa::{csa_multiplier, csa_multiplier_with_stats, wallace_multiplier};
pub use reduce::{
    reduce_columns, reduce_dadda, ripple_sum, Columns, FaInstance, HaInstance, ReduceStats,
    ReduceStyle,
};

use crate::Aig;

/// Packs multiplier operands into the input-bit encoding used by
/// [`crate::sim::eval_u128`]: `a` in the low `n` bits, `b` in the next
/// `n` bits.
pub fn pack_operands(n: usize, a: u128, b: u128) -> u128 {
    let mask = (1u128 << n) - 1;
    (a & mask) | ((b & mask) << n)
}

/// The theoretical upper bound on full adders in an `n`-bit CSA array
/// multiplier, `(n − 1)² − 1`, as used by the paper (Section V, RQ1).
pub fn csa_fa_upper_bound(n: usize) -> usize {
    if n < 2 {
        return 0;
    }
    (n - 1) * (n - 1) - 1
}

/// Sign-extends a `bits`-wide value to `i128`.
pub fn sign_extend(value: u128, bits: usize) -> i128 {
    let shift = 128 - bits;
    ((value << shift) as i128) >> shift
}

/// Statistics reported by the multiplier generators.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GenStats {
    /// Full adders instantiated.
    pub full_adders: usize,
    /// Half adders instantiated.
    pub half_adders: usize,
}

/// A generated multiplier plus its instantiation statistics.
#[derive(Debug, Clone)]
pub struct Multiplier {
    /// The netlist.
    pub aig: Aig,
    /// How many FA/HA blocks the generator instantiated.
    pub stats: GenStats,
    /// The FA instances, as built (ground truth for experiments).
    pub fas: Vec<FaInstance>,
    /// The HA instances, as built.
    pub has: Vec<HaInstance>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upper_bound_formula() {
        assert_eq!(csa_fa_upper_bound(3), 3);
        assert_eq!(csa_fa_upper_bound(4), 8);
        assert_eq!(csa_fa_upper_bound(128), 16_128);
        assert_eq!(csa_fa_upper_bound(1), 0);
    }

    #[test]
    fn pack_operands_layout() {
        assert_eq!(pack_operands(4, 0b0111, 0b1001), 0b1001_0111);
    }

    #[test]
    fn sign_extend_works() {
        assert_eq!(sign_extend(0b1111, 4), -1);
        assert_eq!(sign_extend(0b0111, 4), 7);
        assert_eq!(sign_extend(0b1000, 4), -8);
    }
}
