//! Unsigned array multipliers: carry-save array (CSA) and Wallace-tree
//! variants.

use super::reduce::{reduce_columns, Columns, ReduceStats, ReduceStyle};
use super::{GenStats, Multiplier};
use crate::Aig;

/// Generates an `n × n` unsigned carry-save **array** multiplier
/// (`2n` outputs) — the "CSA multiplier" benchmark family of the paper.
///
/// The adder tree contains exactly `(n−1)² − 1` full adders, the
/// paper's theoretical upper bound for FA reconstruction.
///
/// # Panics
///
/// Panics if `n < 2`.
///
/// ```
/// use aig::gen::{csa_multiplier, pack_operands};
/// use aig::sim::eval_u128;
/// let aig = csa_multiplier(4);
/// assert_eq!(eval_u128(&aig, pack_operands(4, 7, 9)), 63);
/// ```
pub fn csa_multiplier(n: usize) -> Aig {
    csa_multiplier_with_stats(n).aig
}

/// Like [`csa_multiplier`], also returning FA/HA instantiation counts.
pub fn csa_multiplier_with_stats(n: usize) -> Multiplier {
    unsigned_multiplier(n, ReduceStyle::Array)
}

/// Generates an `n × n` unsigned multiplier with Wallace-tree
/// reduction (same function as [`csa_multiplier`], different adder-tree
/// topology).
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn wallace_multiplier(n: usize) -> Aig {
    unsigned_multiplier(n, ReduceStyle::Wallace).aig
}

fn unsigned_multiplier(n: usize, style: ReduceStyle) -> Multiplier {
    assert!(n >= 2, "multiplier width must be at least 2");
    let mut aig = Aig::new();
    let a = aig.add_inputs(n);
    let b = aig.add_inputs(n);
    let mut cols = Columns::new();
    for (i, &bi) in b.iter().enumerate() {
        for (j, &aj) in a.iter().enumerate() {
            let pp = aig.and(aj, bi);
            cols.push(i + j, pp);
        }
    }
    let mut stats = ReduceStats::default();
    let out = reduce_columns(&mut aig, cols, 2 * n, style, &mut stats);
    for (i, bit) in out.iter().enumerate() {
        aig.add_output(format!("p{i}"), *bit);
    }
    Multiplier {
        aig,
        stats: GenStats {
            full_adders: stats.full_adders,
            half_adders: stats.half_adders,
        },
        fas: stats.fa_blocks,
        has: stats.ha_blocks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{csa_fa_upper_bound, pack_operands};
    use crate::sim::eval_u128;

    fn check_unsigned(aig: &Aig, n: usize, pairs: &[(u128, u128)]) {
        for &(a, b) in pairs {
            let product = eval_u128(aig, pack_operands(n, a, b));
            let mask = (1u128 << (2 * n)) - 1;
            assert_eq!(product, (a * b) & mask, "{a} * {b} (n={n})");
        }
    }

    #[test]
    fn csa_3bit_exhaustive() {
        let aig = csa_multiplier(3);
        for a in 0..8u128 {
            for b in 0..8u128 {
                check_unsigned(&aig, 3, &[(a, b)]);
            }
        }
    }

    #[test]
    fn csa_4bit_exhaustive() {
        let aig = csa_multiplier(4);
        for a in 0..16u128 {
            for b in 0..16u128 {
                check_unsigned(&aig, 4, &[(a, b)]);
            }
        }
    }

    #[test]
    fn csa_larger_widths_spot_checks() {
        for n in [6, 8, 12, 16] {
            let aig = csa_multiplier(n);
            let max = (1u128 << n) - 1;
            check_unsigned(
                &aig,
                n,
                &[
                    (0, 0),
                    (1, max),
                    (max, max),
                    (max / 3, max / 5),
                    (2, max / 2),
                ],
            );
        }
    }

    #[test]
    fn csa_fa_count_matches_upper_bound() {
        for n in [3usize, 4, 6, 8, 12, 16] {
            let m = csa_multiplier_with_stats(n);
            assert_eq!(
                m.stats.full_adders,
                csa_fa_upper_bound(n),
                "FA count for n={n}"
            );
            assert_eq!(m.stats.half_adders, n, "HA count for n={n}");
        }
    }

    #[test]
    fn wallace_matches_csa_function() {
        for n in [4usize, 6, 8] {
            let w = wallace_multiplier(n);
            let c = csa_multiplier(n);
            assert!(crate::sim::random_equiv_check(&w, &c, 8, 0xB0071E));
        }
    }
}
