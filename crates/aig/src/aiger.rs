//! AIGER reading and writing for combinational AIGs: the ASCII `.aag`
//! format ([`to_aag`]/[`from_aag`]) and the binary `.aig` format
//! ([`to_aig_binary`]/[`from_aig_binary`]).
//!
//! Only the combinational subset is supported (no latches), which is
//! all the BoolE benchmarks need.

use std::collections::HashMap;
use std::fmt;

use crate::{Aig, Lit, Node};

/// Error from parsing an AIGER file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAigerError {
    line: usize,
    message: String,
}

impl ParseAigerError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        Self {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseAigerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "aiger parse error on line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseAigerError {}

/// Serializes an AIG to AIGER ASCII format (`.aag`), including output
/// symbol names.
pub fn to_aag(aig: &Aig) -> String {
    let m = aig.num_nodes() - 1;
    let i = aig.num_inputs();
    let o = aig.num_outputs();
    let a = aig.num_ands();
    let mut s = format!("aag {m} {i} 0 {o} {a}\n");
    for input in aig.inputs() {
        s.push_str(&format!("{}\n", input.lit().raw()));
    }
    for (_, lit) in aig.outputs() {
        s.push_str(&format!("{}\n", lit.raw()));
    }
    for var in aig.and_vars() {
        if let Node::And(f0, f1) = aig.node(var) {
            // AIGER wants lhs > rhs0 >= rhs1.
            let (hi, lo) = if f0.raw() >= f1.raw() {
                (f0, f1)
            } else {
                (f1, f0)
            };
            s.push_str(&format!("{} {} {}\n", var.lit().raw(), hi.raw(), lo.raw()));
        }
    }
    for (idx, (name, _)) in aig.outputs().iter().enumerate() {
        s.push_str(&format!("o{idx} {name}\n"));
    }
    s
}

/// Parses an AIGER ASCII (`.aag`) combinational file.
///
/// # Errors
///
/// Returns an error on malformed headers, latches (unsupported),
/// out-of-order definitions, or literals out of range.
pub fn from_aag(text: &str) -> Result<Aig, ParseAigerError> {
    let mut lines = text.lines().enumerate();
    let (lineno, header) = lines
        .next()
        .ok_or_else(|| ParseAigerError::new(0, "empty file"))?;
    let fields: Vec<&str> = header.split_whitespace().collect();
    if fields.len() != 6 || fields[0] != "aag" {
        return Err(ParseAigerError::new(
            lineno + 1,
            "header must be `aag M I L O A`",
        ));
    }
    let parse_num = |s: &str, line: usize| -> Result<u32, ParseAigerError> {
        s.parse()
            .map_err(|_| ParseAigerError::new(line, format!("invalid number `{s}`")))
    };
    let m = parse_num(fields[1], lineno + 1)?;
    let i = parse_num(fields[2], lineno + 1)?;
    let l = parse_num(fields[3], lineno + 1)?;
    let o = parse_num(fields[4], lineno + 1)?;
    let a = parse_num(fields[5], lineno + 1)?;
    if l != 0 {
        return Err(ParseAigerError::new(
            lineno + 1,
            "latches are not supported (combinational only)",
        ));
    }
    if m < i + a {
        return Err(ParseAigerError::new(lineno + 1, "M < I + A"));
    }

    let mut aig = Aig::new();
    // input literal (as written) -> our literal
    let mut lit_map: HashMap<u32, Lit> = HashMap::new();
    lit_map.insert(0, Lit::FALSE);

    for _ in 0..i {
        let (lineno, line) = lines
            .next()
            .ok_or_else(|| ParseAigerError::new(0, "unexpected EOF in inputs"))?;
        let raw = parse_num(line.trim(), lineno + 1)?;
        if raw < 2 || raw & 1 == 1 {
            return Err(ParseAigerError::new(
                lineno + 1,
                "input literal must be a positive even literal",
            ));
        }
        let lit = aig.add_input();
        lit_map.insert(raw, lit);
    }

    let mut output_raw: Vec<(usize, u32)> = Vec::with_capacity(o as usize);
    for _ in 0..o {
        let (lineno, line) = lines
            .next()
            .ok_or_else(|| ParseAigerError::new(0, "unexpected EOF in outputs"))?;
        output_raw.push((lineno + 1, parse_num(line.trim(), lineno + 1)?));
    }

    for _ in 0..a {
        let (lineno, line) = lines
            .next()
            .ok_or_else(|| ParseAigerError::new(0, "unexpected EOF in AND gates"))?;
        let nums: Vec<&str> = line.split_whitespace().collect();
        if nums.len() != 3 {
            return Err(ParseAigerError::new(
                lineno + 1,
                "AND line must be `lhs rhs0 rhs1`",
            ));
        }
        let lhs = parse_num(nums[0], lineno + 1)?;
        let rhs0 = parse_num(nums[1], lineno + 1)?;
        let rhs1 = parse_num(nums[2], lineno + 1)?;
        if lhs & 1 == 1 {
            return Err(ParseAigerError::new(lineno + 1, "AND lhs must be even"));
        }
        let resolve =
            |raw: u32, line: usize, map: &HashMap<u32, Lit>| -> Result<Lit, ParseAigerError> {
                let var_lit = raw & !1;
                let lit = map.get(&var_lit).copied().ok_or_else(|| {
                    ParseAigerError::new(line, format!("literal {raw} used before definition"))
                })?;
                Ok(lit ^ (raw & 1 == 1))
            };
        let f0 = resolve(rhs0, lineno + 1, &lit_map)?;
        let f1 = resolve(rhs1, lineno + 1, &lit_map)?;
        let lit = aig.and(f0, f1);
        lit_map.insert(lhs, lit);
    }

    // Optional symbol table: oN name
    let mut out_names: HashMap<usize, String> = HashMap::new();
    for (lineno, line) in lines {
        let line = line.trim();
        if line == "c" || line.starts_with("c ") {
            break;
        }
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('o') {
            let mut parts = rest.splitn(2, ' ');
            let idx: usize = parts
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| ParseAigerError::new(lineno + 1, "bad symbol line"))?;
            let name = parts.next().unwrap_or("").to_owned();
            out_names.insert(idx, name);
        }
        // input symbols (iN) are accepted and ignored
    }

    for (idx, (line, raw)) in output_raw.iter().enumerate() {
        let var_lit = raw & !1;
        let lit = lit_map.get(&var_lit).copied().ok_or_else(|| {
            ParseAigerError::new(*line, format!("undefined output literal {raw}"))
        })? ^ (raw & 1 == 1);
        let name = out_names
            .get(&idx)
            .cloned()
            .unwrap_or_else(|| format!("o{idx}"));
        aig.add_output(name, lit);
    }
    let _ = m;
    Ok(aig)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::exhaustive_equiv_check;

    fn full_adder_aig() -> Aig {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let c = aig.add_input();
        let s = aig.xor3(a, b, c);
        let co = aig.maj(a, b, c);
        aig.add_output("sum", s);
        aig.add_output("carry", co);
        aig
    }

    #[test]
    fn roundtrip_preserves_function() {
        let aig = full_adder_aig();
        let text = to_aag(&aig);
        let parsed = from_aag(&text).unwrap();
        assert_eq!(parsed.num_inputs(), 3);
        assert_eq!(parsed.num_outputs(), 2);
        assert!(exhaustive_equiv_check(&aig, &parsed));
        assert_eq!(parsed.outputs()[0].0, "sum");
        assert_eq!(parsed.outputs()[1].0, "carry");
    }

    #[test]
    fn parses_canonical_example() {
        // AND of two inputs.
        let text = "aag 3 2 0 1 1\n2\n4\n6\n6 4 2\n";
        let aig = from_aag(text).unwrap();
        assert_eq!(aig.num_inputs(), 2);
        assert_eq!(aig.num_ands(), 1);
        let mut expect = Aig::new();
        let a = expect.add_input();
        let b = expect.add_input();
        let y = expect.and(a, b);
        expect.add_output("y", y);
        assert!(exhaustive_equiv_check(&aig, &expect));
    }

    #[test]
    fn rejects_malformed() {
        assert!(from_aag("").is_err());
        assert!(from_aag("aig 1 1 0 0 0\n2\n").is_err());
        assert!(from_aag("aag 1 0 1 0 0\n").is_err()); // latch
        assert!(from_aag("aag 1 1 0 1 0\n2\n").is_err()); // missing output line
        assert!(from_aag("aag 3 2 0 0 1\n2\n4\n6 8 2\n").is_err()); // fwd ref
    }

    #[test]
    fn complemented_outputs_roundtrip() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let x = aig.and(a, b);
        aig.add_output("nand", !x);
        let parsed = from_aag(&to_aag(&aig)).unwrap();
        assert!(exhaustive_equiv_check(&aig, &parsed));
    }
}

/// Serializes an AIG to the binary AIGER format (`.aig`).
///
/// In the binary format, inputs are implicitly numbered `2, 4, …, 2I`
/// and AND gates `2(I+1), …, 2M`; each AND is stored as two
/// LEB128-style deltas. Because our in-memory variable order already
/// is inputs-then-ANDs in topological order, the mapping is direct.
pub fn to_aig_binary(aig: &Aig) -> Vec<u8> {
    // Map our variables to the contiguous binary numbering: inputs
    // first (they already are, by construction, interleaved with
    // nothing — but re-map defensively).
    let mut var_code: Vec<u32> = vec![0; aig.num_nodes()];
    let mut next = 1u32;
    for input in aig.inputs() {
        var_code[input.index()] = next;
        next += 1;
    }
    for var in aig.and_vars() {
        var_code[var.index()] = next;
        next += 1;
    }
    let code_of =
        |lit: Lit| -> u32 { var_code[lit.var().index()] * 2 + u32::from(lit.is_complemented()) };

    let m = aig.num_nodes() - 1;
    let i = aig.num_inputs();
    let o = aig.num_outputs();
    let a = aig.num_ands();
    let mut out = format!("aig {m} {i} 0 {o} {a}\n").into_bytes();
    for (_, lit) in aig.outputs() {
        out.extend_from_slice(format!("{}\n", code_of(*lit)).as_bytes());
    }
    for var in aig.and_vars() {
        if let Node::And(f0, f1) = aig.node(var) {
            let lhs = var_code[var.index()] * 2;
            let (hi, lo) = {
                let c0 = code_of(f0);
                let c1 = code_of(f1);
                if c0 >= c1 {
                    (c0, c1)
                } else {
                    (c1, c0)
                }
            };
            debug_assert!(lhs > hi, "AND operands must precede the gate");
            push_delta(&mut out, lhs - hi);
            push_delta(&mut out, hi - lo);
        }
    }
    for (idx, (name, _)) in aig.outputs().iter().enumerate() {
        out.extend_from_slice(format!("o{idx} {name}\n").as_bytes());
    }
    out
}

fn push_delta(out: &mut Vec<u8>, mut delta: u32) {
    loop {
        let byte = (delta & 0x7F) as u8;
        delta >>= 7;
        if delta == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Parses a binary AIGER (`.aig`) combinational file.
///
/// # Errors
///
/// Returns an error on malformed headers, latches, truncated delta
/// streams, or out-of-order gates.
pub fn from_aig_binary(bytes: &[u8]) -> Result<Aig, ParseAigerError> {
    // Header line.
    let newline = bytes
        .iter()
        .position(|&b| b == b'\n')
        .ok_or_else(|| ParseAigerError::new(1, "missing header line"))?;
    let header = std::str::from_utf8(&bytes[..newline])
        .map_err(|_| ParseAigerError::new(1, "header is not UTF-8"))?;
    let fields: Vec<&str> = header.split_whitespace().collect();
    if fields.len() != 6 || fields[0] != "aig" {
        return Err(ParseAigerError::new(1, "header must be `aig M I L O A`"));
    }
    let parse_num = |s: &str| -> Result<u32, ParseAigerError> {
        s.parse()
            .map_err(|_| ParseAigerError::new(1, format!("invalid number `{s}`")))
    };
    let m = parse_num(fields[1])?;
    let i = parse_num(fields[2])?;
    let l = parse_num(fields[3])?;
    let o = parse_num(fields[4])?;
    let a = parse_num(fields[5])?;
    if l != 0 {
        return Err(ParseAigerError::new(1, "latches are not supported"));
    }
    if m != i + a {
        return Err(ParseAigerError::new(1, "binary aiger requires M = I + A"));
    }
    let mut pos = newline + 1;

    // Output literal lines (ASCII decimal).
    let mut output_codes: Vec<u32> = Vec::with_capacity(o as usize);
    for _ in 0..o {
        let end = bytes[pos..]
            .iter()
            .position(|&b| b == b'\n')
            .ok_or_else(|| ParseAigerError::new(0, "unexpected EOF in outputs"))?
            + pos;
        let line = std::str::from_utf8(&bytes[pos..end])
            .map_err(|_| ParseAigerError::new(0, "output line is not UTF-8"))?;
        output_codes.push(parse_num(line.trim())?);
        pos = end + 1;
    }

    // AND gate delta stream.
    let mut aig = Aig::new();
    // code (variable number in the binary ordering) -> literal.
    let mut lits: Vec<Lit> = Vec::with_capacity(m as usize + 1);
    lits.push(Lit::FALSE);
    for _ in 0..i {
        lits.push(aig.add_input());
    }
    let read_delta = |pos: &mut usize| -> Result<u32, ParseAigerError> {
        let mut value: u32 = 0;
        let mut shift = 0;
        loop {
            let &byte = bytes
                .get(*pos)
                .ok_or_else(|| ParseAigerError::new(0, "truncated delta stream"))?;
            *pos += 1;
            value |= u32::from(byte & 0x7F) << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
            if shift > 28 {
                return Err(ParseAigerError::new(0, "delta overflow"));
            }
        }
    };
    for gate in 0..a {
        let lhs = (i + 1 + gate) * 2;
        let d0 = read_delta(&mut pos)?;
        let d1 = read_delta(&mut pos)?;
        let rhs0 = lhs
            .checked_sub(d0)
            .ok_or_else(|| ParseAigerError::new(0, "delta exceeds lhs"))?;
        let rhs1 = rhs0
            .checked_sub(d1)
            .ok_or_else(|| ParseAigerError::new(0, "second delta exceeds rhs0"))?;
        let resolve = |code: u32| -> Result<Lit, ParseAigerError> {
            let lit = lits
                .get((code / 2) as usize)
                .copied()
                .ok_or_else(|| ParseAigerError::new(0, format!("literal {code} out of range")))?;
            Ok(lit ^ (code & 1 == 1))
        };
        let f0 = resolve(rhs0)?;
        let f1 = resolve(rhs1)?;
        lits.push(aig.and(f0, f1));
    }

    // Optional symbol table.
    let mut out_names: HashMap<usize, String> = HashMap::new();
    if pos < bytes.len() {
        if let Ok(rest) = std::str::from_utf8(&bytes[pos..]) {
            for line in rest.lines() {
                if line == "c" || line.starts_with("c ") {
                    break;
                }
                if let Some(spec) = line.strip_prefix('o') {
                    let mut parts = spec.splitn(2, ' ');
                    if let Some(idx) = parts.next().and_then(|s| s.parse::<usize>().ok()) {
                        out_names.insert(idx, parts.next().unwrap_or("").to_owned());
                    }
                }
            }
        }
    }
    for (idx, code) in output_codes.iter().enumerate() {
        let lit = lits.get((code / 2) as usize).copied().ok_or_else(|| {
            ParseAigerError::new(0, format!("output literal {code} out of range"))
        })? ^ (code & 1 == 1);
        let name = out_names
            .get(&idx)
            .cloned()
            .unwrap_or_else(|| format!("o{idx}"));
        aig.add_output(name, lit);
    }
    Ok(aig)
}

#[cfg(test)]
mod binary_tests {
    use super::*;
    use crate::sim::{exhaustive_equiv_check, random_equiv_check};

    #[test]
    fn binary_roundtrip_small() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let c = aig.add_input();
        let s = aig.xor3(a, b, c);
        let co = aig.maj(a, b, c);
        aig.add_output("sum", s);
        aig.add_output("carry", !co);
        let bytes = to_aig_binary(&aig);
        let parsed = from_aig_binary(&bytes).unwrap();
        assert_eq!(parsed.num_inputs(), 3);
        assert_eq!(parsed.num_outputs(), 2);
        assert!(exhaustive_equiv_check(&aig, &parsed));
        assert_eq!(parsed.outputs()[0].0, "sum");
    }

    #[test]
    fn binary_roundtrip_multiplier() {
        let aig = crate::gen::csa_multiplier(6);
        let bytes = to_aig_binary(&aig);
        let parsed = from_aig_binary(&bytes).unwrap();
        assert!(random_equiv_check(&aig, &parsed, 8, 0xB1A));
        // Binary format is more compact than ASCII.
        assert!(bytes.len() < to_aag(&aig).len());
    }

    #[test]
    fn binary_rejects_malformed() {
        assert!(from_aig_binary(b"").is_err());
        assert!(from_aig_binary(b"aig 1 1 1 0 0\n").is_err()); // latch
        assert!(from_aig_binary(b"aig 2 1 0 0 2\n").is_err()); // M != I+A
                                                               // Truncated delta stream.
        assert!(from_aig_binary(b"aig 2 1 0 0 1\n").is_err());
    }

    #[test]
    fn binary_and_ascii_agree() {
        let aig = crate::gen::booth_multiplier(4);
        let from_bin = from_aig_binary(&to_aig_binary(&aig)).unwrap();
        let from_text = from_aag(&to_aag(&aig)).unwrap();
        assert!(exhaustive_equiv_check(&from_bin, &from_text));
    }
}
