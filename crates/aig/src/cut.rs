//! K-feasible cut enumeration with cut functions.
//!
//! A cut of node `r` is a set of leaves such that every path from the
//! primary inputs to `r` crosses a leaf. Cut enumeration is the core of
//! ABC-style structural reasoning and technology mapping; BoolE's
//! baseline (`&atree`) detects full adders by pairing XOR3/MAJ cuts.

use crate::tt::Tt;
use crate::{Aig, Node, Var};

/// A cut: sorted leaf variables plus the root function over them.
///
/// The truth-table variable `i` corresponds to `leaves[i]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cut {
    /// The sorted leaf variables.
    pub leaves: Vec<Var>,
    /// The root's function in terms of the leaves.
    pub tt: Tt,
}

impl Cut {
    /// The trivial cut of a variable: `{v}` with identity function.
    pub fn unit(v: Var) -> Cut {
        Cut {
            leaves: vec![v],
            tt: Tt::var(1, 0),
        }
    }

    /// Cut size (number of leaves).
    pub fn size(&self) -> usize {
        self.leaves.len()
    }

    /// Returns `true` if `self`'s leaves are a subset of `other`'s.
    pub fn dominates(&self, other: &Cut) -> bool {
        self.leaves.iter().all(|l| other.leaves.contains(l))
    }
}

/// Parameters for cut enumeration.
#[derive(Debug, Clone, Copy)]
pub struct CutParams {
    /// Maximum cut size `K` (2..=6).
    pub k: usize,
    /// Maximum number of cuts kept per node (priority cuts); the unit
    /// cut is always kept in addition.
    pub max_cuts: usize,
}

impl Default for CutParams {
    fn default() -> Self {
        // The paper's reasoning uses 3-feasible cuts.
        Self { k: 3, max_cuts: 24 }
    }
}

/// Enumerates cuts for every variable of `aig`; the result is indexed
/// by variable.
///
/// # Panics
///
/// Panics if `params.k` is outside `2..=6`.
pub fn enumerate_cuts(aig: &Aig, params: &CutParams) -> Vec<Vec<Cut>> {
    assert!(
        (2..=Tt::MAX_VARS).contains(&params.k),
        "cut size must be in 2..=6"
    );
    let mut cuts: Vec<Vec<Cut>> = vec![Vec::new(); aig.num_nodes()];
    for (i, node) in aig.nodes().iter().enumerate() {
        let v = Var(i as u32);
        match *node {
            Node::Const => {
                cuts[i] = vec![Cut {
                    leaves: vec![],
                    tt: Tt::zero(0),
                }];
            }
            Node::Input(_) => {
                cuts[i] = vec![Cut::unit(v)];
            }
            Node::And(f0, f1) => {
                let mut merged: Vec<Cut> = Vec::new();
                for c0 in &cuts[f0.var().index()] {
                    for c1 in &cuts[f1.var().index()] {
                        if let Some(cut) =
                            merge_cuts(c0, f0.is_complemented(), c1, f1.is_complemented(), params.k)
                        {
                            merged.push(cut);
                        }
                    }
                }
                // Dedup by leaves (same leaves always imply same tt for a
                // fixed root), then drop dominated cuts.
                merged.sort_by(|a, b| a.leaves.cmp(&b.leaves));
                merged.dedup_by(|a, b| a.leaves == b.leaves);
                let mut kept: Vec<Cut> = Vec::new();
                // Prefer smaller cuts when pruning dominated ones.
                merged.sort_by_key(|c| c.size());
                for cut in merged {
                    if !kept.iter().any(|k| k.dominates(&cut)) {
                        kept.push(cut);
                    }
                    if kept.len() >= params.max_cuts {
                        break;
                    }
                }
                kept.push(Cut::unit(v));
                cuts[i] = kept;
            }
        }
    }
    cuts
}

/// Merges two child cuts across an AND gate, or returns `None` if the
/// merged leaf set exceeds `k`.
fn merge_cuts(c0: &Cut, neg0: bool, c1: &Cut, neg1: bool, k: usize) -> Option<Cut> {
    let mut leaves: Vec<Var> = c0.leaves.clone();
    for &l in &c1.leaves {
        if !leaves.contains(&l) {
            leaves.push(l);
        }
    }
    if leaves.len() > k {
        return None;
    }
    leaves.sort_unstable();
    let t0 = expand_tt(c0.tt, &c0.leaves, &leaves);
    let t1 = expand_tt(c1.tt, &c1.leaves, &leaves);
    let t0 = if neg0 { !t0 } else { t0 };
    let t1 = if neg1 { !t1 } else { t1 };
    Some(Cut {
        tt: t0 & t1,
        leaves,
    })
}

/// Re-expresses `tt` (over `from` leaves) on the superset `to` leaves.
pub fn expand_tt(tt: Tt, from: &[Var], to: &[Var]) -> Tt {
    debug_assert!(from.iter().all(|l| to.contains(l)));
    let positions: Vec<usize> = from
        .iter()
        .map(|l| {
            to.iter()
                .position(|t| t == l)
                .expect("leaf must be in superset")
        })
        .collect();
    let n = to.len();
    let mut bits = 0u64;
    for idx in 0..(1usize << n) {
        let mut sub = 0usize;
        for (i, &pos) in positions.iter().enumerate() {
            if (idx >> pos) & 1 == 1 {
                sub |= 1 << i;
            }
        }
        if tt.eval(sub) {
            bits |= 1 << idx;
        }
    }
    Tt::from_bits(n, bits)
}

/// Computes the function of `root` over an arbitrary leaf set by cone
/// simulation, or `None` if the cone reaches a primary input (or the
/// constant) that is not in `leaves`, or has more than 6 leaves.
///
/// Unlike [`enumerate_cuts`], this evaluates one specific (root, leaf
/// set) pair; it is used to validate detected blocks.
pub fn cone_tt(aig: &Aig, root: Var, leaves: &[Var]) -> Option<Tt> {
    if leaves.len() > Tt::MAX_VARS {
        return None;
    }
    let n = leaves.len();
    let mut memo: std::collections::HashMap<Var, Tt> = std::collections::HashMap::new();
    for (i, &l) in leaves.iter().enumerate() {
        memo.insert(l, Tt::var(n, i));
    }
    fn go(
        aig: &Aig,
        v: Var,
        n: usize,
        memo: &mut std::collections::HashMap<Var, Tt>,
    ) -> Option<Tt> {
        if let Some(&tt) = memo.get(&v) {
            return Some(tt);
        }
        let tt = match aig.node(v) {
            Node::Const => Tt::zero(n),
            Node::Input(_) => return None, // input not covered by leaves
            Node::And(a, b) => {
                let ta = go(aig, a.var(), n, memo)?;
                let tb = go(aig, b.var(), n, memo)?;
                let ta = if a.is_complemented() { !ta } else { ta };
                let tb = if b.is_complemented() { !tb } else { tb };
                ta & tb
            }
        };
        memo.insert(v, tt);
        Some(tt)
    }
    go(aig, root, n, &mut memo)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fa_aig() -> (Aig, crate::Lit, crate::Lit, Vec<Var>) {
        // Full adder; returns (aig, sum_lit, carry_lit, input_vars).
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let c = aig.add_input();
        let s = aig.xor3(a, b, c);
        let co = aig.maj(a, b, c);
        aig.add_output("s", s);
        aig.add_output("c", co);
        (aig, s, co, vec![a.var(), b.var(), c.var()])
    }

    /// The function of `lit` given its root-variable truth table.
    fn lit_tt(lit: crate::Lit, var_tt: Tt) -> Tt {
        if lit.is_complemented() {
            !var_tt
        } else {
            var_tt
        }
    }

    #[test]
    fn unit_cuts_for_inputs() {
        let (aig, ..) = fa_aig();
        let cuts = enumerate_cuts(&aig, &CutParams::default());
        for &input in aig.inputs() {
            assert_eq!(cuts[input.index()].len(), 1);
            assert_eq!(cuts[input.index()][0], Cut::unit(input));
        }
    }

    #[test]
    fn finds_xor3_and_maj_cuts() {
        let (aig, sum, carry, ins) = fa_aig();
        let cuts = enumerate_cuts(&aig, &CutParams::default());
        let sum_cut = cuts[sum.var().index()]
            .iter()
            .find(|c| c.leaves == ins)
            .expect("sum must have the 3-input cut");
        assert_eq!(lit_tt(sum, sum_cut.tt), Tt::xor3());
        let carry_cut = cuts[carry.var().index()]
            .iter()
            .find(|c| c.leaves == ins)
            .expect("carry must have the 3-input cut");
        assert_eq!(lit_tt(carry, carry_cut.tt), Tt::maj3());
    }

    #[test]
    fn cut_functions_match_cone_simulation() {
        let (aig, sum, _, _) = fa_aig();
        let sum = sum.var();
        let cuts = enumerate_cuts(&aig, &CutParams { k: 4, max_cuts: 32 });
        for cut in &cuts[sum.index()] {
            if cut.leaves == [sum] {
                continue; // unit cut
            }
            let tt = cone_tt(&aig, sum, &cut.leaves).expect("cut must cover cone");
            assert_eq!(tt, cut.tt, "cut {:?}", cut.leaves);
        }
    }

    #[test]
    fn respects_k_limit() {
        let mut aig = Aig::new();
        let ins = aig.add_inputs(6);
        let y = aig.and_all(ins.iter().copied());
        aig.add_output("y", y);
        let cuts = enumerate_cuts(&aig, &CutParams { k: 3, max_cuts: 64 });
        for node_cuts in &cuts {
            for c in node_cuts {
                assert!(c.size() <= 3);
            }
        }
    }

    #[test]
    fn expand_tt_identity() {
        let a = Var(1);
        let b = Var(2);
        let c = Var(3);
        let f = Tt::xor2();
        let expanded = expand_tt(f, &[a, b], &[a, b, c]);
        assert_eq!(expanded, Tt::var(3, 0) ^ Tt::var(3, 1));
    }

    #[test]
    fn cone_tt_rejects_uncovered_cone() {
        let (aig, sum, _, ins) = fa_aig();
        assert!(cone_tt(&aig, sum.var(), &ins[..2]).is_none());
    }
}
