//! NPN (negation–permutation–negation) canonicalization of small truth
//! tables.
//!
//! Two functions are NPN-equivalent if one can be obtained from the
//! other by negating inputs, permuting inputs, and/or negating the
//! output. The canonical representative is the lexicographically
//! smallest truth table in the orbit. For up to 4 variables the orbit
//! is enumerated exhaustively (4! · 2⁴ · 2 = 768 variants), which is
//! what ABC's fast NPN matching does for small practical cut sizes.

use crate::tt::Tt;

/// The NPN transform that maps a function to its canonical form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NpnTransform {
    /// `perm[i]` = which original variable canonical variable `i` reads.
    pub perm: Vec<usize>,
    /// Bit `i` set = original variable `perm[i]` is negated.
    pub input_neg: u32,
    /// The output is negated.
    pub output_neg: bool,
}

/// A canonical NPN representative plus the transform that produced it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NpnCanon {
    /// The canonical truth table.
    pub tt: Tt,
    /// The transform from the original function to `tt`.
    pub transform: NpnTransform,
}

fn permutations(n: usize) -> Vec<Vec<usize>> {
    fn go(items: &mut Vec<usize>, k: usize, out: &mut Vec<Vec<usize>>) {
        if k == items.len() {
            out.push(items.clone());
            return;
        }
        for i in k..items.len() {
            items.swap(k, i);
            go(items, k + 1, out);
            items.swap(k, i);
        }
    }
    let mut items: Vec<usize> = (0..n).collect();
    let mut out = Vec::new();
    go(&mut items, 0, &mut out);
    out
}

/// Computes the NPN-canonical form of `tt` by exhaustive orbit
/// enumeration.
///
/// # Panics
///
/// Panics if `tt` has more than 5 variables (orbit enumeration would be
/// too slow; BoolE only needs 2- and 3-input cuts).
pub fn npn_canon(tt: Tt) -> NpnCanon {
    let n = tt.num_vars();
    assert!(n <= 5, "npn_canon capped at 5 variables");
    let mut best: Option<NpnCanon> = None;
    for perm in permutations(n) {
        let permuted = tt.permute(&perm);
        for neg in 0u32..(1 << n) {
            let mut cand = permuted;
            for i in 0..n {
                if (neg >> i) & 1 == 1 {
                    cand = cand.flip_var(i);
                }
            }
            for out_neg in [false, true] {
                let final_tt = if out_neg { !cand } else { cand };
                let better = match &best {
                    None => true,
                    Some(b) => final_tt.bits() < b.tt.bits(),
                };
                if better {
                    best = Some(NpnCanon {
                        tt: final_tt,
                        transform: NpnTransform {
                            perm: perm.clone(),
                            input_neg: neg,
                            output_neg: out_neg,
                        },
                    });
                }
            }
        }
    }
    best.expect("orbit is never empty")
}

/// Returns `true` if two functions are NPN-equivalent.
pub fn npn_equivalent(a: Tt, b: Tt) -> bool {
    a.num_vars() == b.num_vars() && npn_canon(a).tt == npn_canon(b).tt
}

/// The canonical representative of the 3-input XOR NPN class.
pub fn xor3_npn_class() -> Tt {
    npn_canon(Tt::xor3()).tt
}

/// The canonical representative of the 3-input majority NPN class.
pub fn maj3_npn_class() -> Tt {
    npn_canon(Tt::maj3()).tt
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_is_idempotent() {
        for f in [Tt::xor3(), Tt::maj3(), Tt::var(3, 1), Tt::zero(3)] {
            let c = npn_canon(f).tt;
            assert_eq!(npn_canon(c).tt, c);
        }
    }

    #[test]
    fn npn_class_of_xor_includes_xnor() {
        assert!(npn_equivalent(Tt::xor3(), !Tt::xor3()));
        assert!(npn_equivalent(Tt::xor2(), !Tt::xor2()));
    }

    #[test]
    fn maj_class_includes_negated_inputs() {
        // maj(!a, b, c) is NPN-equivalent to maj(a, b, c).
        let m = Tt::maj3();
        assert!(npn_equivalent(m, m.flip_var(0)));
        assert!(npn_equivalent(m, m.flip_var(0).flip_var(2)));
    }

    #[test]
    fn xor_and_maj_are_distinct_classes() {
        assert!(!npn_equivalent(Tt::xor3(), Tt::maj3()));
        assert!(!npn_equivalent(Tt::and2(), Tt::xor2()));
    }

    #[test]
    fn permuted_functions_share_class() {
        let f = Tt::var(3, 0) & !Tt::var(3, 1) | Tt::var(3, 2);
        let g = f.permute(&[2, 0, 1]).flip_var(1);
        assert!(npn_equivalent(f, g));
        assert!(npn_equivalent(f, !g));
    }

    #[test]
    fn orbit_size_sanity() {
        // All 2^(2^2)=16 two-variable functions fall into exactly 4 NPN
        // classes: const, single-literal, and2-like, xor2-like.
        use std::collections::HashSet;
        let classes: HashSet<u64> = (0..16u64)
            .map(|bits| npn_canon(Tt::from_bits(2, bits)).tt.bits())
            .collect();
        assert_eq!(classes.len(), 4);
    }
}
