//! Cut-based standard-cell technology mapping — the stand-in for
//! ABC + the ASAP7 7 nm library used in the paper.
//!
//! The pipeline is:
//!
//! 1. [`Library::asap7_like`] — a standard-cell library in the spirit
//!    of ASAP7's combinational set (INV/BUF, NAND/NOR/AND/OR 2–4,
//!    AOI/OAI/AO/OA 21/22, XOR2/XNOR2, MUX2, tie cells, several drive
//!    strengths).
//! 2. [`map_aig`] — area-oriented dynamic-programming covering over
//!    K-feasible cuts, matching cut functions against the library under
//!    input permutation/negation and output negation (explicit
//!    inverters are inserted where polarities demand them).
//! 3. [`unmap`] — re-decomposes every mapped cell back into AIG
//!    structure from its truth table (SOP form), which is structurally
//!    unlike the generator's XOR-chain/majority shapes. This is what
//!    makes post-mapping netlists hard for structural FA detection, as
//!    in the paper's Figures 1 and 4.

mod library;
mod mapper;
mod netlist;
mod unmap;

pub use library::{Cell, CellId, Library, MatchEntry};
pub use mapper::{map_aig, MapParams};
pub use netlist::{Instance, MappedNetlist, Net};
pub use unmap::unmap;

use crate::Aig;

/// The full "technology mapping round trip" used by the experiments:
/// map onto the ASAP7-like library and re-decompose into an AIG.
pub fn map_round_trip(aig: &Aig) -> Aig {
    let lib = Library::asap7_like();
    let mapped = map_aig(aig, &lib, &MapParams::default());
    unmap(&mapped).trim()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{booth_multiplier, csa_multiplier};
    use crate::sim::{exhaustive_equiv_check, random_equiv_check};

    #[test]
    fn round_trip_preserves_csa() {
        for n in [3usize, 4] {
            let aig = csa_multiplier(n);
            let mapped = map_round_trip(&aig);
            assert!(exhaustive_equiv_check(&aig, &mapped), "n={n}");
        }
        let aig = csa_multiplier(8);
        let mapped = map_round_trip(&aig);
        assert!(random_equiv_check(&aig, &mapped, 8, 0xA5A5));
    }

    #[test]
    fn round_trip_preserves_booth() {
        let aig = booth_multiplier(6);
        let mapped = map_round_trip(&aig);
        assert!(exhaustive_equiv_check(&aig, &mapped));
    }

    #[test]
    fn mapping_restructures() {
        let aig = csa_multiplier(6);
        let mapped = map_round_trip(&aig);
        assert_ne!(aig.num_ands(), mapped.num_ands());
    }

    #[test]
    fn mapped_netlist_uses_varied_cells() {
        let aig = csa_multiplier(6);
        let lib = Library::asap7_like();
        let netlist = map_aig(&aig, &lib, &MapParams::default());
        let hist = netlist.cell_histogram();
        assert!(hist.len() >= 4, "expected several distinct cells: {hist:?}");
        assert!(netlist.area() > 0.0);
    }
}
