//! Area-oriented cut-based covering.

use std::collections::HashMap;

use super::library::{Library, MatchEntry};
use super::netlist::{MappedNetlist, Net};
use crate::cut::{enumerate_cuts, CutParams};
use crate::tt::Tt;
use crate::{Aig, Node, Var};

/// Parameters for [`map_aig`].
#[derive(Debug, Clone, Copy)]
pub struct MapParams {
    /// Cut size for matching (2..=4).
    pub k: usize,
    /// Cuts kept per node.
    pub max_cuts: usize,
}

impl Default for MapParams {
    fn default() -> Self {
        Self { k: 4, max_cuts: 16 }
    }
}

#[derive(Debug, Clone)]
struct Choice {
    leaves: Vec<Var>,
    entry: MatchEntry,
    cost: f64,
}

/// Maps `aig` onto `lib` by dynamic programming over K-feasible cuts,
/// minimizing (approximate, tree-based) area.
///
/// # Panics
///
/// Panics if some node cannot be matched — impossible with a library
/// containing the AND2 NPN orbit (NAND/NOR/AND/OR), which
/// [`Library::asap7_like`] provides.
pub fn map_aig(aig: &Aig, lib: &Library, params: &MapParams) -> MappedNetlist {
    let cuts = enumerate_cuts(
        aig,
        &CutParams {
            k: params.k.clamp(2, 4),
            max_cuts: params.max_cuts,
        },
    );

    // DP: best realization per AND variable.
    let mut best: Vec<Option<Choice>> = vec![None; aig.num_nodes()];
    let mut cost: Vec<f64> = vec![0.0; aig.num_nodes()];
    for var in aig.and_vars() {
        let mut chosen: Option<Choice> = None;
        for cut in &cuts[var.index()] {
            if cut.leaves == [var] || cut.leaves.is_empty() {
                continue;
            }
            let (tt, leaves) = reduce_cut_support(cut.tt, &cut.leaves);
            if leaves.is_empty() {
                // Constant node function; handled by tie cells below.
                continue;
            }
            let Some(entry) = lib.matcher(tt) else {
                continue;
            };
            let total = entry.cost + leaves.iter().map(|l| cost[l.index()]).sum::<f64>();
            let better = chosen.as_ref().is_none_or(|c| total < c.cost);
            if better {
                chosen = Some(Choice {
                    leaves,
                    entry: entry.clone(),
                    cost: total,
                });
            }
        }
        let chosen = chosen
            .unwrap_or_else(|| panic!("no library match for node {var:?}; library incomplete"));
        cost[var.index()] = chosen.cost;
        best[var.index()] = Some(chosen);
    }

    // Cover from the outputs.
    let mut netlist = MappedNetlist::new(lib.clone(), aig.num_inputs());
    let mut net_of: HashMap<Var, Net> = HashMap::new();
    let mut inverted: HashMap<Net, Net> = HashMap::new();
    let mut tie_lo_net: Option<Net> = None;

    // Input ordinals.
    for (ordinal, &input) in aig.inputs().iter().enumerate() {
        net_of.insert(input, Net::Input(ordinal as u32));
    }

    // Emit instances for needed vars, depth-first from outputs.
    let mut stack: Vec<(Var, bool)> = aig
        .outputs()
        .iter()
        .rev()
        .map(|(_, l)| (l.var(), false))
        .collect();
    while let Some((var, expanded)) = stack.pop() {
        if net_of.contains_key(&var) {
            continue;
        }
        match aig.node(var) {
            Node::Const => {
                let net =
                    *tie_lo_net.get_or_insert_with(|| netlist.add_instance(lib.tie_lo(), vec![]));
                net_of.insert(var, net);
            }
            Node::Input(_) => unreachable!("inputs pre-seeded"),
            Node::And(..) => {
                let choice = best[var.index()].as_ref().expect("DP covered all ANDs");
                if !expanded {
                    stack.push((var, true));
                    for &leaf in &choice.leaves {
                        stack.push((leaf, false));
                    }
                    continue;
                }
                // All leaves have nets now; wire up the instance.
                let choice = choice.clone();
                let mut pins: Vec<Net> = Vec::with_capacity(choice.entry.leaf_for_pin.len());
                for (pin, &leaf_idx) in choice.entry.leaf_for_pin.iter().enumerate() {
                    let leaf = choice.leaves[leaf_idx];
                    let mut net = net_of[&leaf];
                    if (choice.entry.input_neg >> pin) & 1 == 1 {
                        net = get_inverted(&mut netlist, &mut inverted, lib, net);
                    }
                    pins.push(net);
                }
                let mut out = netlist.add_instance(choice.entry.cell, pins);
                if choice.entry.output_neg {
                    out = get_inverted(&mut netlist, &mut inverted, lib, out);
                }
                net_of.insert(var, out);
            }
        }
    }

    // Outputs (inverters for complemented output literals).
    for (name, lit) in aig.outputs() {
        let mut net = net_of[&lit.var()];
        if lit.is_complemented() {
            net = get_inverted(&mut netlist, &mut inverted, lib, net);
        }
        netlist.add_output(name.clone(), net);
    }
    netlist
}

fn get_inverted(
    netlist: &mut MappedNetlist,
    inverted: &mut HashMap<Net, Net>,
    lib: &Library,
    net: Net,
) -> Net {
    if let Some(&n) = inverted.get(&net) {
        return n;
    }
    let n = netlist.add_instance(lib.inverter(), vec![net]);
    inverted.insert(net, n);
    n
}

/// Drops don't-care leaves from a cut function (mirrors
/// `opt::rewrite`'s support reduction, kept separate to stay
/// module-local).
fn reduce_cut_support(tt: Tt, leaves: &[Var]) -> (Tt, Vec<Var>) {
    let kept: Vec<usize> = (0..tt.num_vars()).filter(|&i| tt.depends_on(i)).collect();
    if kept.len() == tt.num_vars() {
        return (tt, leaves.to_vec());
    }
    let n = kept.len();
    let mut bits = 0u64;
    for idx in 0..(1usize << n) {
        let mut full = 0usize;
        for (new_i, &old_i) in kept.iter().enumerate() {
            if (idx >> new_i) & 1 == 1 {
                full |= 1 << old_i;
            }
        }
        if tt.eval(full) {
            bits |= 1 << idx;
        }
    }
    (
        Tt::from_bits(n, bits),
        kept.iter().map(|&i| leaves[i]).collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::csa_multiplier;

    #[test]
    fn maps_simple_and() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let y = aig.and(a, b);
        aig.add_output("y", y);
        let lib = Library::asap7_like();
        let nl = map_aig(&aig, &lib, &MapParams::default());
        assert_eq!(nl.num_cells(), 1);
    }

    #[test]
    fn complemented_output_gets_inverter() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let y = aig.and(a, b);
        aig.add_output("nand", !y);
        let lib = Library::asap7_like();
        let nl = map_aig(&aig, &lib, &MapParams::default());
        // Either a NAND cell directly... but the DP maps the *variable*
        // (AND2) and the output polarity adds an INV.
        assert!(nl.num_cells() <= 2);
    }

    #[test]
    fn inverters_are_shared() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let c = aig.add_input();
        let x = aig.xor(a, b); // uses !(a&b) internally
        let y = aig.and(x, c);
        aig.add_output("y", y);
        aig.add_output("x", x);
        let lib = Library::asap7_like();
        let nl = map_aig(&aig, &lib, &MapParams::default());
        let hist = nl.cell_histogram();
        let invs: usize = hist
            .iter()
            .filter(|(name, _)| name.starts_with("INV"))
            .map(|(_, n)| *n)
            .sum();
        assert!(invs <= 2, "inverters should be shared: {hist:?}");
    }

    #[test]
    fn mapping_covers_multiplier() {
        let aig = csa_multiplier(4);
        let lib = Library::asap7_like();
        let nl = map_aig(&aig, &lib, &MapParams::default());
        assert!(nl.num_cells() > 10);
        assert_eq!(nl.outputs().len(), 8);
    }
}
