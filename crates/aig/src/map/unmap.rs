//! Re-decomposition of a mapped netlist into an AIG.

use super::netlist::{MappedNetlist, Net};
use crate::synth::build_sop;
use crate::{Aig, Lit};

/// Converts a mapped netlist back to an AIG by rebuilding each cell
/// from its truth table in SOP form.
///
/// The resulting structure deliberately differs from the canonical
/// generator shapes (an XOR2 cell becomes `(a&!b)|(!a&b)` rather than
/// `(a|b)&!(a&b)`; complex AOI/OAI cells become their two-level
/// forms). This reproduces "the AIG of the mapped netlist" that the
/// paper's reasoning tools consume (Figure 1a).
pub fn unmap(netlist: &MappedNetlist) -> Aig {
    let mut aig = Aig::new();
    let inputs = aig.add_inputs(netlist.num_inputs());
    let mut net_lit: Vec<Lit> = Vec::with_capacity(netlist.instances().len());
    for inst in netlist.instances() {
        let cell = netlist.library().cell(inst.cell);
        let leaf_lits: Vec<Lit> = inst
            .inputs
            .iter()
            .map(|net| resolve(&inputs, &net_lit, *net))
            .collect();
        let lit = build_sop(&mut aig, cell.tt, &leaf_lits);
        net_lit.push(lit);
    }
    for (name, net) in netlist.outputs() {
        let lit = resolve(&inputs, &net_lit, *net);
        aig.add_output(name.clone(), lit);
    }
    aig
}

fn resolve(inputs: &[Lit], net_lit: &[Lit], net: Net) -> Lit {
    match net {
        Net::Input(i) => inputs[i as usize],
        Net::Cell(i) => net_lit[i as usize],
    }
}

#[cfg(test)]
mod tests {
    use super::super::library::Library;
    use super::super::mapper::{map_aig, MapParams};
    use super::*;
    use crate::sim::exhaustive_equiv_check;

    #[test]
    fn unmap_inverts_mapping() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let c = aig.add_input();
        let s = aig.xor3(a, b, c);
        let co = aig.maj(a, b, c);
        aig.add_output("s", s);
        aig.add_output("c", co);
        let lib = Library::asap7_like();
        let nl = map_aig(&aig, &lib, &MapParams::default());
        let back = unmap(&nl);
        assert!(exhaustive_equiv_check(&aig, &back));
    }

    #[test]
    fn unmap_handles_constants() {
        let mut aig = Aig::new();
        let _a = aig.add_input();
        aig.add_output("zero", Lit::FALSE);
        aig.add_output("one", Lit::TRUE);
        let lib = Library::asap7_like();
        let nl = map_aig(&aig, &lib, &MapParams::default());
        let back = unmap(&nl);
        assert!(exhaustive_equiv_check(&aig, &back));
    }
}
