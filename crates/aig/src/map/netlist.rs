//! The mapped (standard-cell) netlist representation.

use std::collections::HashMap;

use super::library::{CellId, Library};

/// A net in a mapped netlist: either a primary input or a cell output.
#[derive(Debug, Copy, Clone, PartialEq, Eq, Hash)]
pub enum Net {
    /// Primary input by ordinal.
    Input(u32),
    /// Output of instance `i`.
    Cell(u32),
}

/// A cell instance: a library cell with connected input nets.
#[derive(Debug, Clone)]
pub struct Instance {
    /// The library cell.
    pub cell: CellId,
    /// One net per pin, in pin order.
    pub inputs: Vec<Net>,
}

/// A technology-mapped netlist over a [`Library`].
///
/// Instances are stored in topological order: an instance's input nets
/// refer only to primary inputs or earlier instances.
#[derive(Debug, Clone)]
pub struct MappedNetlist {
    lib: Library,
    num_inputs: usize,
    instances: Vec<Instance>,
    outputs: Vec<(String, Net)>,
}

impl MappedNetlist {
    /// Creates an empty netlist over `lib` with `num_inputs` primary
    /// inputs.
    pub fn new(lib: Library, num_inputs: usize) -> Self {
        Self {
            lib,
            num_inputs,
            instances: vec![],
            outputs: vec![],
        }
    }

    /// The library this netlist is mapped onto.
    pub fn library(&self) -> &Library {
        &self.lib
    }

    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// The cell instances in topological order.
    pub fn instances(&self) -> &[Instance] {
        &self.instances
    }

    /// The named outputs.
    pub fn outputs(&self) -> &[(String, Net)] {
        &self.outputs
    }

    /// Appends an instance, returning its output net.
    ///
    /// # Panics
    ///
    /// Panics if the pin count mismatches the cell arity or an input
    /// net is out of range.
    pub fn add_instance(&mut self, cell: CellId, inputs: Vec<Net>) -> Net {
        assert_eq!(
            inputs.len(),
            self.lib.cell(cell).arity,
            "pin count mismatch for {}",
            self.lib.cell(cell).name
        );
        for net in &inputs {
            match *net {
                Net::Input(i) => assert!((i as usize) < self.num_inputs, "input net out of range"),
                Net::Cell(i) => assert!(
                    (i as usize) < self.instances.len(),
                    "cell net out of order (must be topological)"
                ),
            }
        }
        let id = self.instances.len() as u32;
        self.instances.push(Instance { cell, inputs });
        Net::Cell(id)
    }

    /// Registers a named output.
    pub fn add_output(&mut self, name: impl Into<String>, net: Net) {
        self.outputs.push((name.into(), net));
    }

    /// Total cell area.
    pub fn area(&self) -> f64 {
        self.instances
            .iter()
            .map(|inst| self.lib.cell(inst.cell).area)
            .sum()
    }

    /// Number of instances.
    pub fn num_cells(&self) -> usize {
        self.instances.len()
    }

    /// Histogram of cell names to instance counts.
    pub fn cell_histogram(&self) -> HashMap<String, usize> {
        let mut hist = HashMap::new();
        for inst in &self.instances {
            *hist
                .entry(self.lib.cell(inst.cell).name.clone())
                .or_insert(0) += 1;
        }
        hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tt::Tt;

    #[test]
    fn builds_and_reports() {
        let lib = Library::asap7_like();
        let and2 = lib.matcher(Tt::and2()).unwrap().cell;
        let mut nl = MappedNetlist::new(lib, 2);
        let y = nl.add_instance(and2, vec![Net::Input(0), Net::Input(1)]);
        nl.add_output("y", y);
        assert_eq!(nl.num_cells(), 1);
        assert!(nl.area() > 0.0);
        assert_eq!(nl.cell_histogram().len(), 1);
    }

    #[test]
    #[should_panic(expected = "pin count mismatch")]
    fn rejects_wrong_arity() {
        let lib = Library::asap7_like();
        let and2 = lib.matcher(Tt::and2()).unwrap().cell;
        let mut nl = MappedNetlist::new(lib, 2);
        nl.add_instance(and2, vec![Net::Input(0)]);
    }

    #[test]
    #[should_panic(expected = "topological")]
    fn rejects_forward_reference() {
        let lib = Library::asap7_like();
        let and2 = lib.matcher(Tt::and2()).unwrap().cell;
        let mut nl = MappedNetlist::new(lib, 2);
        nl.add_instance(and2, vec![Net::Input(0), Net::Cell(5)]);
    }
}
