//! The standard-cell library and its function-matching index.

use std::collections::HashMap;

use crate::tt::Tt;

/// An index into a [`Library`]'s cell list.
#[derive(Debug, Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CellId(pub usize);

/// A combinational standard cell (single output).
#[derive(Debug, Clone)]
pub struct Cell {
    /// Cell name, e.g. `AOI21_x1`.
    pub name: String,
    /// Number of input pins.
    pub arity: usize,
    /// The cell function over its pins.
    pub tt: Tt,
    /// Area in arbitrary units.
    pub area: f64,
}

/// A precomputed match: how to realize a cut function with a cell.
#[derive(Debug, Clone)]
pub struct MatchEntry {
    /// The cell to instantiate.
    pub cell: CellId,
    /// `leaf_for_pin[p]` = which cut leaf pin `p` connects to.
    pub leaf_for_pin: Vec<usize>,
    /// Bit `p` set = pin `p` needs an inverter on its leaf.
    pub input_neg: u32,
    /// The cell output needs an inverter.
    pub output_neg: bool,
    /// Total area cost including the required inverters.
    pub cost: f64,
}

/// A cell library plus an exact-match index from small truth tables to
/// the cheapest realization.
#[derive(Debug, Clone)]
pub struct Library {
    cells: Vec<Cell>,
    matches: HashMap<(usize, u64), MatchEntry>,
    inv: CellId,
    tie_lo: CellId,
    tie_hi: CellId,
}

impl Library {
    /// Builds a library in the spirit of the ASAP7 combinational cell
    /// set. Drive-strength variants share a function; the matcher keeps
    /// the cheapest.
    pub fn asap7_like() -> Library {
        let v = |k: usize, i: usize| Tt::var(k, i);
        let mut cells: Vec<Cell> = Vec::new();
        let mut add = |name: &str, tt: Tt, area: f64| {
            cells.push(Cell {
                name: name.to_owned(),
                arity: tt.num_vars(),
                tt,
                area,
            });
        };

        // Tie cells.
        add("TIELOx1", Tt::zero(0), 0.3);
        add("TIEHIx1", Tt::one(0), 0.3);
        // Inverters / buffers in several strengths.
        add("INVx1", !v(1, 0), 0.5);
        add("INVx2", !v(1, 0), 0.7);
        add("INVx4", !v(1, 0), 1.1);
        add("BUFx2", v(1, 0), 0.9);
        add("BUFx4", v(1, 0), 1.3);

        // NAND / NOR / AND / OR families.
        let and2 = v(2, 0) & v(2, 1);
        let and3 = v(3, 0) & v(3, 1) & v(3, 2);
        let and4 = v(4, 0) & v(4, 1) & v(4, 2) & v(4, 3);
        let or2 = v(2, 0) | v(2, 1);
        let or3 = v(3, 0) | v(3, 1) | v(3, 2);
        let or4 = v(4, 0) | v(4, 1) | v(4, 2) | v(4, 3);
        add("NAND2x1", !and2, 0.8);
        add("NAND2x2", !and2, 1.1);
        add("NAND3x1", !and3, 1.2);
        add("NAND4x1", !and4, 1.6);
        add("NOR2x1", !or2, 0.8);
        add("NOR2x2", !or2, 1.1);
        add("NOR3x1", !or3, 1.2);
        add("NOR4x1", !or4, 1.6);
        add("AND2x2", and2, 1.1);
        add("AND3x1", and3, 1.5);
        add("AND4x1", and4, 1.9);
        add("OR2x2", or2, 1.1);
        add("OR3x1", or3, 1.5);
        add("OR4x1", or4, 1.9);

        // AOI / OAI / AO / OA complex gates.
        let aoi21 = !((v(3, 0) & v(3, 1)) | v(3, 2));
        let oai21 = !((v(3, 0) | v(3, 1)) & v(3, 2));
        let aoi22 = !((v(4, 0) & v(4, 1)) | (v(4, 2) & v(4, 3)));
        let oai22 = !((v(4, 0) | v(4, 1)) & (v(4, 2) | v(4, 3)));
        let aoi211 = !((v(4, 0) & v(4, 1)) | v(4, 2) | v(4, 3));
        let oai211 = !((v(4, 0) | v(4, 1)) & v(4, 2) & v(4, 3));
        add("AOI21x1", aoi21, 1.3);
        add("AOI21x2", aoi21, 1.7);
        add("OAI21x1", oai21, 1.3);
        add("AOI22x1", aoi22, 1.7);
        add("OAI22x1", oai22, 1.7);
        add("AOI211x1", aoi211, 1.9);
        add("OAI211x1", oai211, 1.9);
        add("AO21x1", !aoi21, 1.6);
        add("OA21x1", !oai21, 1.6);
        add("AO22x1", !aoi22, 2.0);
        add("OA22x1", !oai22, 2.0);

        // XOR family and mux.
        let xor2 = v(2, 0) ^ v(2, 1);
        let mux2 = (v(3, 2) & v(3, 0)) | (!v(3, 2) & v(3, 1));
        add("XOR2x1", xor2, 1.9);
        add("XOR2x2", xor2, 2.3);
        add("XNOR2x1", !xor2, 1.9);
        add("MUX2x1", mux2, 2.2);

        Library::from_cells(cells)
    }

    /// Builds a library from explicit cells, computing the match index.
    ///
    /// # Panics
    ///
    /// Panics if the library lacks an inverter or tie cells, or if any
    /// cell has more than 4 pins.
    pub fn from_cells(cells: Vec<Cell>) -> Library {
        assert!(
            cells.iter().all(|c| c.arity <= 4),
            "mapper supports cells of up to 4 pins"
        );
        let inv = cells
            .iter()
            .position(|c| c.arity == 1 && c.tt == !Tt::var(1, 0))
            .map(CellId)
            .expect("library must contain an inverter");
        let tie_lo = cells
            .iter()
            .position(|c| c.arity == 0 && c.tt == Tt::zero(0))
            .map(CellId)
            .expect("library must contain TIELO");
        let tie_hi = cells
            .iter()
            .position(|c| c.arity == 0 && c.tt == Tt::one(0))
            .map(CellId)
            .expect("library must contain TIEHI");
        let mut lib = Library {
            cells,
            matches: HashMap::new(),
            inv,
            tie_lo,
            tie_hi,
        };
        lib.build_match_index();
        lib
    }

    fn build_match_index(&mut self) {
        let inv_area = self.cells[self.inv.0].area;
        let mut matches: HashMap<(usize, u64), MatchEntry> = HashMap::new();
        for (idx, cell) in self.cells.iter().enumerate() {
            let k = cell.arity;
            for perm in permutations(k) {
                for input_neg in 0u32..(1 << k) {
                    // Realized function over the k leaves.
                    let mut bits = 0u64;
                    for leaf_assignment in 0..(1usize << k) {
                        let mut pin_assignment = 0usize;
                        for (pin, &leaf) in perm.iter().enumerate() {
                            let mut val = (leaf_assignment >> leaf) & 1 == 1;
                            if (input_neg >> pin) & 1 == 1 {
                                val = !val;
                            }
                            if val {
                                pin_assignment |= 1 << pin;
                            }
                        }
                        if cell.tt.eval(pin_assignment) {
                            bits |= 1 << leaf_assignment;
                        }
                    }
                    for output_neg in [false, true] {
                        let realized = if output_neg {
                            (!Tt::from_bits(k, bits)).bits()
                        } else {
                            bits
                        };
                        let cost = cell.area
                            + inv_area
                                * (f64::from(input_neg.count_ones())
                                    + f64::from(u8::from(output_neg)));
                        let key = (k, realized);
                        let better = matches.get(&key).is_none_or(|m| cost < m.cost);
                        if better {
                            matches.insert(
                                key,
                                MatchEntry {
                                    cell: CellId(idx),
                                    leaf_for_pin: perm.clone(),
                                    input_neg,
                                    output_neg,
                                    cost,
                                },
                            );
                        }
                    }
                }
            }
        }
        self.matches = matches;
    }

    /// Looks up the cheapest realization of a cut function.
    pub fn matcher(&self, tt: Tt) -> Option<&MatchEntry> {
        self.matches.get(&(tt.num_vars(), tt.bits()))
    }

    /// The cells of the library.
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// Access a cell by id.
    pub fn cell(&self, id: CellId) -> &Cell {
        &self.cells[id.0]
    }

    /// The inverter cell.
    pub fn inverter(&self) -> CellId {
        self.inv
    }

    /// The constant-false tie cell.
    pub fn tie_lo(&self) -> CellId {
        self.tie_lo
    }

    /// The constant-true tie cell.
    pub fn tie_hi(&self) -> CellId {
        self.tie_hi
    }
}

fn permutations(n: usize) -> Vec<Vec<usize>> {
    if n == 0 {
        return vec![vec![]];
    }
    let mut out = Vec::new();
    let mut items: Vec<usize> = (0..n).collect();
    permute_rec(&mut items, 0, &mut out);
    out
}

fn permute_rec(items: &mut Vec<usize>, k: usize, out: &mut Vec<Vec<usize>>) {
    if k == items.len() {
        out.push(items.clone());
        return;
    }
    for i in k..items.len() {
        items.swap(k, i);
        permute_rec(items, k + 1, out);
        items.swap(k, i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn asap7_like_has_inverter_and_ties() {
        let lib = Library::asap7_like();
        assert_eq!(lib.cell(lib.inverter()).name, "INVx1");
        assert_eq!(lib.cell(lib.tie_lo()).arity, 0);
        assert!(lib.cells().len() > 30);
    }

    #[test]
    fn matches_basic_functions() {
        let lib = Library::asap7_like();
        // Plain AND2 matches the AND2 cell directly (cheapest).
        let m = lib.matcher(Tt::and2()).expect("and2 must match");
        assert!(lib.cell(m.cell).name.starts_with("AND2"));
        assert_eq!(m.input_neg, 0);
        assert!(!m.output_neg);
        // !AND2 matches NAND2 (no inverters).
        let m = lib.matcher(!Tt::and2()).expect("nand2 must match");
        assert!(lib.cell(m.cell).name.starts_with("NAND2"));
        // a & !b realized via NOR2 with one inverter or AND2+INV;
        // either way cost must exceed plain AND2.
        let a_and_not_b = Tt::var(2, 0) & !Tt::var(2, 1);
        let m2 = lib.matcher(a_and_not_b).expect("must match");
        let base = lib.matcher(Tt::and2()).unwrap();
        assert!(m2.cost > base.cost);
    }

    #[test]
    fn match_covers_xor_and_maj() {
        let lib = Library::asap7_like();
        assert!(lib.matcher(Tt::xor2()).is_some());
        // MAJ3 is not a library cell and (being outside every cell's
        // NPN orbit here) must not match — the key property that makes
        // mapped netlists lose their majority gates.
        assert!(lib.matcher(Tt::maj3()).is_none());
    }

    #[test]
    fn realized_match_semantics() {
        // For a sample of 3-variable functions that match, verify the
        // entry actually realizes the function.
        let lib = Library::asap7_like();
        let mut checked = 0;
        for bits in 0..256u64 {
            let tt = Tt::from_bits(3, bits);
            let Some(m) = lib.matcher(tt) else { continue };
            let cell = lib.cell(m.cell);
            for leaf_assignment in 0..8usize {
                let mut pin_assignment = 0usize;
                for (pin, &leaf) in m.leaf_for_pin.iter().enumerate() {
                    let mut val = (leaf_assignment >> leaf) & 1 == 1;
                    if (m.input_neg >> pin) & 1 == 1 {
                        val = !val;
                    }
                    if val {
                        pin_assignment |= 1 << pin;
                    }
                }
                let out = cell.tt.eval(pin_assignment) ^ m.output_neg;
                assert_eq!(out, tt.eval(leaf_assignment), "tt={bits:#x}");
            }
            checked += 1;
        }
        assert!(checked > 50, "expected many 3-var matches, got {checked}");
    }
}
