//! And-Inverter Graph (AIG) substrate for the BoolE reproduction.
//!
//! This crate provides everything the paper assumes from ABC's side:
//!
//! * [`Aig`] — a structurally hashed AIG with constant folding,
//!   AIGER text I/O ([`aiger`]), and 64-way bit-parallel simulation
//!   ([`sim`]).
//! * Format-agnostic netlist ingestion ([`netlist`]): BLIF ([`blif`])
//!   and structural-Verilog ([`verilog`]) frontends behind the
//!   [`netlist::Netlist`] trait, dispatched by file extension via
//!   [`netlist::read_netlist`].
//! * Arithmetic benchmark generators ([`gen`]): unsigned carry-save
//!   array (CSA) multipliers, signed radix-4 Booth multipliers, and the
//!   adder building blocks they share.
//! * K-feasible cut enumeration ([`cut`]), small truth tables ([`tt`]),
//!   and NPN canonicalization ([`npn`]).
//! * Structure-destroying logic optimization ([`opt`], the stand-in for
//!   ABC's `dch`) and cut-based standard-cell technology mapping
//!   ([`map`], the stand-in for ABC + the ASAP7 library), including
//!   re-decomposition of mapped netlists back into AIGs.
//!
//! # Example
//!
//! ```
//! use aig::gen::{csa_multiplier, pack_operands};
//! use aig::sim::eval_u128;
//!
//! let aig = csa_multiplier(4);
//! assert_eq!(aig.num_inputs(), 8);
//! assert_eq!(aig.num_outputs(), 8);
//! assert_eq!(eval_u128(&aig, pack_operands(4, 7, 9)), 63);
//! ```

#![warn(missing_docs)]

mod aig;
pub mod aiger;
pub mod blif;
pub mod cut;
pub mod gen;
pub mod map;
pub mod netlist;
pub mod npn;
pub mod opt;
pub mod sim;
pub mod synth;
#[cfg(feature = "test-util")]
pub mod test_util;
pub mod tt;
pub mod verilog;

pub use crate::aig::{Aig, Lit, Node, Var};
pub use crate::netlist::{read_netlist, write_netlist, Netlist, NetlistError, NetlistErrorKind};
