//! Bit-parallel simulation of AIGs.
//!
//! Each primary input is assigned a 64-bit word; all 64 "patterns"
//! are simulated at once. [`simulate_values`] and [`eval_u128`] provide
//! single-pattern conveniences, and [`random_equiv_check`] /
//! [`exhaustive_equiv_check`] give fast (respectively complete, for
//! small input counts) functional equivalence checks between AIGs.

use crate::{Aig, Lit, Node};

/// Simulates `aig` with one 64-bit word per input, returning one word
/// per output.
///
/// # Panics
///
/// Panics if `inputs.len() != aig.num_inputs()`.
pub fn simulate_words(aig: &Aig, inputs: &[u64]) -> Vec<u64> {
    assert_eq!(
        inputs.len(),
        aig.num_inputs(),
        "expected {} input words, got {}",
        aig.num_inputs(),
        inputs.len()
    );
    let values = simulate_node_words(aig, inputs);
    aig.outputs()
        .iter()
        .map(|(_, lit)| lit_value(&values, *lit))
        .collect()
}

/// Simulates `aig`, returning the word value of every *node* (indexed
/// by variable).
pub fn simulate_node_words(aig: &Aig, inputs: &[u64]) -> Vec<u64> {
    let mut values = vec![0u64; aig.num_nodes()];
    for (i, node) in aig.nodes().iter().enumerate() {
        values[i] = match *node {
            Node::Const => 0,
            Node::Input(ordinal) => inputs[ordinal as usize],
            Node::And(a, b) => lit_value(&values, a) & lit_value(&values, b),
        };
    }
    values
}

fn lit_value(values: &[u64], lit: Lit) -> u64 {
    let v = values[lit.var().index()];
    if lit.is_complemented() {
        !v
    } else {
        v
    }
}

/// Simulates a single Boolean input pattern.
///
/// # Panics
///
/// Panics if `inputs.len() != aig.num_inputs()`.
pub fn simulate_values(aig: &Aig, inputs: &[bool]) -> Vec<bool> {
    let words: Vec<u64> = inputs.iter().map(|&b| if b { !0 } else { 0 }).collect();
    simulate_words(aig, &words)
        .into_iter()
        .map(|w| w & 1 == 1)
        .collect()
}

/// Evaluates an AIG whose inputs/outputs encode little-endian binary
/// numbers: the low `aig.num_inputs()` bits of `input_bits` feed the
/// inputs in order; the outputs are reassembled into a `u128`.
///
/// # Panics
///
/// Panics if the AIG has more than 128 inputs or outputs.
pub fn eval_u128(aig: &Aig, input_bits: u128) -> u128 {
    assert!(aig.num_inputs() <= 128, "too many inputs for eval_u128");
    assert!(aig.num_outputs() <= 128, "too many outputs for eval_u128");
    let inputs: Vec<bool> = (0..aig.num_inputs())
        .map(|i| (input_bits >> i) & 1 == 1)
        .collect();
    simulate_values(aig, &inputs)
        .iter()
        .enumerate()
        .map(|(i, &b)| (b as u128) << i)
        .sum()
}

/// Checks functional equivalence of two AIGs on `rounds * 64` random
/// patterns using a simple xorshift generator (deterministic given
/// `seed`). Returns `false` on any mismatch; `true` means "no
/// counterexample found".
///
/// # Panics
///
/// Panics if the interfaces (input/output counts) differ.
pub fn random_equiv_check(a: &Aig, b: &Aig, rounds: usize, seed: u64) -> bool {
    assert_eq!(a.num_inputs(), b.num_inputs(), "input counts differ");
    assert_eq!(a.num_outputs(), b.num_outputs(), "output counts differ");
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for _ in 0..rounds {
        let inputs: Vec<u64> = (0..a.num_inputs()).map(|_| next()).collect();
        if simulate_words(a, &inputs) != simulate_words(b, &inputs) {
            return false;
        }
    }
    true
}

/// Exhaustively checks functional equivalence of two AIGs.
///
/// # Panics
///
/// Panics if the interfaces differ or there are more than 24 inputs
/// (2^24 patterns is the sanity cap).
pub fn exhaustive_equiv_check(a: &Aig, b: &Aig) -> bool {
    assert_eq!(a.num_inputs(), b.num_inputs(), "input counts differ");
    assert_eq!(a.num_outputs(), b.num_outputs(), "output counts differ");
    let n = a.num_inputs();
    assert!(n <= 24, "exhaustive check capped at 24 inputs");
    // Batch 64 patterns per word: input i < 6 gets its tt pattern,
    // higher inputs get constants per batch.
    let low = n.min(6);
    let patterns: Vec<u64> = (0..low).map(tt_var_word).collect();
    let high = n - low;
    for assignment in 0u64..(1 << high) {
        let mut inputs = patterns.clone();
        for i in 0..high {
            inputs.push(if (assignment >> i) & 1 == 1 { !0 } else { 0 });
        }
        let mask = if low == 6 {
            !0u64
        } else {
            (1u64 << (1 << low)) - 1
        };
        let oa = simulate_words(a, &inputs);
        let ob = simulate_words(b, &inputs);
        if oa.iter().zip(&ob).any(|(x, y)| (x ^ y) & mask != 0) {
            return false;
        }
    }
    true
}

/// The simulation word in which input `i` (for `i < 6`) takes its
/// truth-table pattern (0101…, 0011…, …).
pub fn tt_var_word(i: usize) -> u64 {
    const PATTERNS: [u64; 6] = [
        0xAAAA_AAAA_AAAA_AAAA,
        0xCCCC_CCCC_CCCC_CCCC,
        0xF0F0_F0F0_F0F0_F0F0,
        0xFF00_FF00_FF00_FF00,
        0xFFFF_0000_FFFF_0000,
        0xFFFF_FFFF_0000_0000,
    ];
    PATTERNS[i]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_aig() -> Aig {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let x = aig.xor(a, b);
        aig.add_output("y", x);
        aig
    }

    #[test]
    fn simulate_xor() {
        let aig = xor_aig();
        assert_eq!(simulate_values(&aig, &[false, false]), vec![false]);
        assert_eq!(simulate_values(&aig, &[true, false]), vec![true]);
        assert_eq!(simulate_values(&aig, &[false, true]), vec![true]);
        assert_eq!(simulate_values(&aig, &[true, true]), vec![false]);
    }

    #[test]
    fn simulate_words_parallel() {
        let aig = xor_aig();
        let out = simulate_words(&aig, &[0b0101, 0b0011]);
        assert_eq!(out[0] & 0xF, 0b0110);
    }

    #[test]
    fn equivalence_checks_agree() {
        // xor two ways: (a|b)&!(a&b) vs (a&!b)|(!a&b)
        let a = xor_aig();
        let mut b = Aig::new();
        let x = b.add_input();
        let y = b.add_input();
        let t1 = b.and(x, !y);
        let t2 = b.and(!x, y);
        let o = b.or(t1, t2);
        b.add_output("y", o);
        assert!(random_equiv_check(&a, &b, 4, 42));
        assert!(exhaustive_equiv_check(&a, &b));
    }

    #[test]
    fn equivalence_detects_difference() {
        let a = xor_aig();
        let mut b = Aig::new();
        let x = b.add_input();
        let y = b.add_input();
        let o = b.or(x, y);
        b.add_output("y", o);
        assert!(!exhaustive_equiv_check(&a, &b));
        assert!(!random_equiv_check(&a, &b, 4, 7));
    }

    #[test]
    fn eval_u128_binary_convention() {
        // 2-bit adder by hand: s0 = a0^b0, c = a0&b0, s1 = a1^b1^c ...
        let mut aig = Aig::new();
        let a0 = aig.add_input();
        let a1 = aig.add_input();
        let b0 = aig.add_input();
        let b1 = aig.add_input();
        let s0 = aig.xor(a0, b0);
        let c0 = aig.and(a0, b0);
        let s1 = aig.xor3(a1, b1, c0);
        let c1 = aig.maj(a1, b1, c0);
        aig.add_output("s0", s0);
        aig.add_output("s1", s1);
        aig.add_output("s2", c1);
        for a in 0u128..4 {
            for b in 0u128..4 {
                let input = a | (b << 2);
                assert_eq!(eval_u128(&aig, input), a + b, "a={a} b={b}");
            }
        }
    }

    #[test]
    fn exhaustive_handles_more_than_six_inputs() {
        // 8-input AND two ways.
        let mut a = Aig::new();
        let ins = a.add_inputs(8);
        let all = a.and_all(ins.iter().copied());
        a.add_output("y", all);
        let mut b = Aig::new();
        let ins_b = b.add_inputs(8);
        let mut acc = Lit::TRUE;
        for l in ins_b.iter().rev() {
            acc = b.and(*l, acc);
        }
        b.add_output("y", acc);
        assert!(exhaustive_equiv_check(&a, &b));
    }
}
