//! Cut-based resynthesis: re-express each node over a K-feasible cut
//! and rebuild it in a different structural style.

use crate::cut::{enumerate_cuts, Cut, CutParams};
use crate::synth::{build_shannon, build_sop};
use crate::tt::Tt;
use crate::{Aig, Lit, Var};

/// Which structure the resynthesizer rebuilds nodes with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResynthStyle {
    /// Two-level irredundant sum-of-products.
    Sop,
    /// Shannon-expansion mux trees.
    Shannon,
    /// Alternate between the two per node (maximally heterogeneous).
    Mixed,
}

/// Parameters for [`rewrite_cuts`].
#[derive(Debug, Clone, Copy)]
pub struct RewriteParams {
    /// Cut size used for re-expression (bigger cuts cross more block
    /// boundaries).
    pub k: usize,
    /// Rebuild style.
    pub style: ResynthStyle,
    /// Growth cap: once the new AIG exceeds `growth_cap ×` the original
    /// AND count, remaining nodes are copied instead of resynthesized.
    pub growth_cap: f64,
}

impl Default for RewriteParams {
    fn default() -> Self {
        // ABC's `dch` is a *size-driven* optimizer: it restructures but
        // does not blow the netlist up, and two-level (SOP) shapes
        // dominate its output. Shannon mux trees with a loose growth
        // cap destroy far more than the real tool does.
        Self {
            k: 4,
            style: ResynthStyle::Sop,
            growth_cap: 1.25,
        }
    }
}

/// Rewrites `aig` by re-expressing every AND node over its widest
/// K-feasible cut and resynthesizing that function from the cut leaves.
///
/// The function is preserved; the gate-level structure is not — in
/// particular XOR-chain and majority shapes spanning cut boundaries are
/// merged and rebuilt, which is exactly the effect heavy logic
/// optimization has on adder trees in the paper's benchmarks.
pub fn rewrite_cuts(aig: &Aig, params: &RewriteParams) -> Aig {
    let cuts = enumerate_cuts(
        aig,
        &CutParams {
            k: params.k.clamp(2, Tt::MAX_VARS),
            max_cuts: 12,
        },
    );
    let budget = (aig.num_ands() as f64 * params.growth_cap) as usize;
    let mut new = Aig::new();
    let mut map: Vec<Lit> = vec![Lit::FALSE; aig.num_nodes()];
    for &input in aig.inputs() {
        map[input.index()] = new.add_input();
    }
    for (counter, var) in aig.and_vars().enumerate() {
        let over_budget = new.num_ands() >= budget;
        let cut = if over_budget {
            None
        } else {
            choose_cut(&cuts[var.index()], var)
        };
        map[var.index()] = match cut {
            Some(cut) => {
                let (tt, leaves) = reduce_support(cut.tt, &cut.leaves);
                let leaf_lits: Vec<Lit> = leaves
                    .iter()
                    .map(|l| Aig::translate(&map, l.lit()))
                    .collect();
                let style = match params.style {
                    ResynthStyle::Sop => ResynthStyle::Sop,
                    ResynthStyle::Shannon => ResynthStyle::Shannon,
                    ResynthStyle::Mixed => {
                        if counter % 2 == 0 {
                            ResynthStyle::Sop
                        } else {
                            ResynthStyle::Shannon
                        }
                    }
                };
                match style {
                    ResynthStyle::Sop => build_sop(&mut new, tt, &leaf_lits),
                    _ => build_shannon(&mut new, tt, &leaf_lits),
                }
            }
            None => {
                // Copy the AND as-is.
                if let crate::Node::And(a, b) = aig.node(var) {
                    let fa = Aig::translate(&map, a);
                    let fb = Aig::translate(&map, b);
                    new.and(fa, fb)
                } else {
                    unreachable!("and_vars yields AND nodes")
                }
            }
        };
    }
    for (name, lit) in aig.outputs() {
        let l = Aig::translate(&map, *lit);
        new.add_output(name.clone(), l);
    }
    new
}

/// Picks the widest non-trivial cut (ties: deepest leaves are implied
/// by enumeration order); `None` if only the unit cut exists.
fn choose_cut(cuts: &[Cut], var: Var) -> Option<&Cut> {
    cuts.iter()
        .filter(|c| c.leaves != [var] && !c.leaves.is_empty())
        .max_by_key(|c| c.size())
}

/// Drops leaves the function does not depend on, compacting the truth
/// table accordingly.
fn reduce_support(tt: Tt, leaves: &[Var]) -> (Tt, Vec<Var>) {
    let mut kept_vars: Vec<usize> = Vec::new();
    for i in 0..tt.num_vars() {
        if tt.depends_on(i) {
            kept_vars.push(i);
        }
    }
    if kept_vars.len() == tt.num_vars() {
        return (tt, leaves.to_vec());
    }
    let n = kept_vars.len();
    let mut bits = 0u64;
    for idx in 0..(1usize << n) {
        // Expand the compact assignment to the original variable set
        // (dropped variables fixed to 0 — they are don't-cares).
        let mut full = 0usize;
        for (new_i, &old_i) in kept_vars.iter().enumerate() {
            if (idx >> new_i) & 1 == 1 {
                full |= 1 << old_i;
            }
        }
        if tt.eval(full) {
            bits |= 1 << idx;
        }
    }
    let new_leaves = kept_vars.iter().map(|&i| leaves[i]).collect();
    (Tt::from_bits(n, bits), new_leaves)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::csa_multiplier;
    use crate::sim::{exhaustive_equiv_check, random_equiv_check};

    #[test]
    fn rewrite_preserves_function_small() {
        let aig = csa_multiplier(3);
        for style in [
            ResynthStyle::Sop,
            ResynthStyle::Shannon,
            ResynthStyle::Mixed,
        ] {
            let params = RewriteParams {
                style,
                ..RewriteParams::default()
            };
            let out = rewrite_cuts(&aig, &params);
            assert!(exhaustive_equiv_check(&aig, &out), "{style:?}");
        }
    }

    #[test]
    fn rewrite_preserves_function_medium() {
        let aig = csa_multiplier(8);
        let out = rewrite_cuts(&aig, &RewriteParams::default());
        assert!(random_equiv_check(&aig, &out, 8, 99));
    }

    #[test]
    fn growth_cap_limits_size() {
        let aig = csa_multiplier(8);
        let params = RewriteParams {
            growth_cap: 1.1,
            ..RewriteParams::default()
        };
        let out = rewrite_cuts(&aig, &params).trim();
        assert!(
            (out.num_ands() as f64) < 1.6 * aig.num_ands() as f64,
            "grew from {} to {}",
            aig.num_ands(),
            out.num_ands()
        );
    }

    #[test]
    fn reduce_support_drops_dont_cares() {
        let tt = Tt::xor2().extend_to(4);
        let leaves = vec![Var(1), Var(2), Var(3), Var(4)];
        let (r, l) = reduce_support(tt, &leaves);
        assert_eq!(r, Tt::xor2());
        assert_eq!(l, vec![Var(1), Var(2)]);
    }
}
