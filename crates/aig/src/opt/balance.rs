//! AND-tree balancing.

use crate::{Aig, Lit, Node};

/// Rebuilds the AIG with every maximal AND tree re-associated into a
/// balanced tree (minimizing depth), like ABC's `balance`.
///
/// Conjunct collection stops at complemented edges, multi-fanout nodes,
/// and primary inputs, so sharing is preserved.
pub fn balance(aig: &Aig) -> Aig {
    let fanouts = aig.fanout_counts();
    let mut new = Aig::new();
    let mut map: Vec<Lit> = vec![Lit::FALSE; aig.num_nodes()];
    // Levels of the new AIG, maintained incrementally.
    let mut lvl: Vec<u32> = vec![0];
    for &input in aig.inputs() {
        map[input.index()] = new.add_input();
        lvl.push(0);
    }
    for var in aig.and_vars() {
        // Collect the conjuncts of the maximal single-fanout AND tree
        // rooted here, in the *old* graph.
        let mut conjuncts: Vec<Lit> = Vec::new();
        collect_conjuncts(aig, var.lit(), &fanouts, true, &mut conjuncts);
        // Translate to new literals and build balanced, shallow first.
        let mut lits: Vec<Lit> = conjuncts.iter().map(|&l| Aig::translate(&map, l)).collect();
        lits.sort_by_key(|l| lvl[l.var().index()]);
        let before = new.num_nodes();
        map[var.index()] = crate::synth::balanced_and(&mut new, &lits);
        for i in before..new.num_nodes() {
            if let Node::And(a, b) = new.nodes()[i] {
                lvl.push(1 + lvl[a.var().index()].max(lvl[b.var().index()]));
            } else {
                lvl.push(0);
            }
        }
    }
    for (name, lit) in aig.outputs() {
        let l = Aig::translate(&map, *lit);
        new.add_output(name.clone(), l);
    }
    new
}

fn collect_conjuncts(aig: &Aig, lit: Lit, fanouts: &[u32], is_root: bool, out: &mut Vec<Lit>) {
    let expandable = !lit.is_complemented()
        && matches!(aig.node(lit.var()), Node::And(..))
        && (is_root || fanouts[lit.var().index()] <= 1);
    if expandable {
        if let Node::And(a, b) = aig.node(lit.var()) {
            collect_conjuncts(aig, a, fanouts, false, out);
            collect_conjuncts(aig, b, fanouts, false, out);
            return;
        }
    }
    out.push(lit);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::exhaustive_equiv_check;

    #[test]
    fn balances_and_chain() {
        let mut aig = Aig::new();
        let ins = aig.add_inputs(8);
        let mut acc = ins[0];
        for &l in &ins[1..] {
            acc = aig.and(acc, l);
        }
        aig.add_output("y", acc);
        assert_eq!(aig.depth(), 7);
        let balanced = balance(&aig);
        assert_eq!(balanced.depth(), 3);
        assert!(exhaustive_equiv_check(&aig, &balanced));
    }

    #[test]
    fn preserves_shared_nodes() {
        let mut aig = Aig::new();
        let ins = aig.add_inputs(4);
        let shared = aig.and(ins[0], ins[1]);
        let x = aig.and(shared, ins[2]);
        let y = aig.and(shared, ins[3]);
        aig.add_output("x", x);
        aig.add_output("y", y);
        let balanced = balance(&aig);
        assert!(exhaustive_equiv_check(&aig, &balanced));
        // Shared conjunct must not be duplicated into both outputs.
        assert!(balanced.num_ands() <= aig.num_ands());
    }

    #[test]
    fn stops_at_complemented_edges() {
        let mut aig = Aig::new();
        let ins = aig.add_inputs(3);
        let o = aig.or(ins[0], ins[1]); // !(!a & !b): complement boundary
        let y = aig.and(o, ins[2]);
        aig.add_output("y", y);
        let balanced = balance(&aig);
        assert!(exhaustive_equiv_check(&aig, &balanced));
    }
}
