//! Logic optimization passes — the stand-in for ABC's `dch`.
//!
//! The paper evaluates BoolE on netlists that went through heavy logic
//! optimization, which destroys the canonical XOR-chain/majority gate
//! shapes of adder trees (Table II: ABC-style cut enumeration finds
//! **zero** exact FAs after `dch`). We reproduce that effect with real,
//! function-preserving passes:
//!
//! * [`balance`] — rebuilds maximal AND trees in balanced form.
//! * [`rewrite_cuts`] — cut-based resynthesis: each node is re-expressed
//!   over a K-feasible cut and rebuilt as SOP or Shannon structure,
//!   merging logic across adder-block boundaries.
//! * [`dch`] — the combined pipeline (balance → rewrite → balance →
//!   trim), analogous to `abc -c dch`.
//!
//! All passes preserve functionality; the test suite checks this by
//! simulation on every multiplier family.

mod balance;
mod rewrite;

pub use balance::balance;
pub use rewrite::{rewrite_cuts, ResynthStyle, RewriteParams};

use crate::Aig;

/// The combined structure-destroying optimization pipeline, analogous
/// to ABC's `dch` as used in the paper's Table II setup.
pub fn dch(aig: &Aig) -> Aig {
    let balanced = balance(aig);
    let rewritten = rewrite_cuts(&balanced, &RewriteParams::default());
    let rebalanced = balance(&rewritten);
    rebalanced.trim()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{booth_multiplier, csa_multiplier};
    use crate::sim::random_equiv_check;

    #[test]
    fn dch_preserves_csa_function() {
        for n in [3usize, 4, 6] {
            let aig = csa_multiplier(n);
            let opt = dch(&aig);
            assert!(random_equiv_check(&aig, &opt, 8, 0xD0C4 + n as u64));
        }
    }

    #[test]
    fn dch_preserves_booth_function() {
        let aig = booth_multiplier(6);
        let opt = dch(&aig);
        assert!(random_equiv_check(&aig, &opt, 8, 0xB007));
    }

    #[test]
    fn dch_changes_structure() {
        let aig = csa_multiplier(6);
        let opt = dch(&aig);
        // The pass must actually restructure, not copy.
        assert_ne!(aig.num_ands(), opt.num_ands());
    }
}
