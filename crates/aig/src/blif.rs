//! BLIF (Berkeley Logic Interchange Format) reading and writing.
//!
//! The combinational subset is supported: `.model`, `.inputs`,
//! `.outputs`, `.names` with SOP covers (lowered to AND/INV networks
//! through [`Aig::and`], so structural hashing applies), and `.end`.
//! `.latch` lines are rejected with a typed
//! [`NetlistErrorKind::Latch`] error; hierarchy (`.subckt`, `.gate`)
//! and don't-care networks (`.exdc`) report
//! [`NetlistErrorKind::Unsupported`].
//!
//! `.names` blocks may appear in any order (a cover may reference a
//! signal defined later); definitions are resolved to a fixpoint and
//! genuine combinational cycles are reported as
//! [`NetlistErrorKind::Cycle`].
//!
//! [`write_blif`] emits one two-input `.names` per AND gate (cover
//! columns carry the fanin polarities) plus one buffer `.names` per
//! output, in topological order — so `parse_blif(write_blif(aig))`
//! rebuilds a node-for-node identical AIG, which the conformance suite
//! asserts.

use std::collections::{HashMap, HashSet};

use crate::netlist::{sanitize_name, NetlistError, NetlistErrorKind};
use crate::{Aig, Lit};

const FORMAT: &str = "blif";

fn err(kind: NetlistErrorKind, line: usize, message: impl Into<String>) -> NetlistError {
    NetlistError::at(FORMAT, kind, line, message)
}

/// One logical line: first physical line number + whitespace tokens
/// (comments stripped, `\` continuations joined).
struct LogicalLine<'a> {
    line: usize,
    tokens: Vec<&'a str>,
}

fn logical_lines(text: &str) -> Result<Vec<LogicalLine<'_>>, NetlistError> {
    let mut out: Vec<LogicalLine<'_>> = Vec::new();
    let mut pending: Option<LogicalLine<'_>> = None;
    let mut last_line = 0usize;
    for (idx, raw) in text.lines().enumerate() {
        last_line = idx + 1;
        let uncommented = match raw.find('#') {
            Some(pos) => &raw[..pos],
            None => raw,
        };
        let trimmed = uncommented.trim_end();
        let (body, continues) = match trimmed.strip_suffix('\\') {
            Some(rest) => (rest, true),
            None => (trimmed, false),
        };
        let tokens = body.split_whitespace();
        match &mut pending {
            Some(line) => line.tokens.extend(tokens),
            None => {
                pending = Some(LogicalLine {
                    line: idx + 1,
                    tokens: tokens.collect(),
                })
            }
        }
        if !continues {
            if let Some(line) = pending.take() {
                if !line.tokens.is_empty() {
                    out.push(line);
                }
            }
        }
    }
    if pending.is_some() {
        return Err(err(
            NetlistErrorKind::Truncated,
            last_line,
            "file ends inside a `\\` continuation",
        ));
    }
    Ok(out)
}

/// A parsed `.names` block, before signal resolution.
struct NamesDef<'a> {
    line: usize,
    inputs: Vec<&'a str>,
    output: &'a str,
    /// Cover rows as (input plane, output value). All rows of one
    /// block share the output value (checked during parsing).
    rows: Vec<(&'a str, bool)>,
}

/// Parses a combinational BLIF model into an [`Aig`].
///
/// # Errors
///
/// Typed [`NetlistError`]s: [`NetlistErrorKind::Latch`] for `.latch`,
/// [`NetlistErrorKind::Truncated`] for files ending before `.end`,
/// [`NetlistErrorKind::Undeclared`] for covers or outputs over signals
/// that are never defined, [`NetlistErrorKind::Arity`] for cover rows
/// whose width disagrees with the `.names` header,
/// [`NetlistErrorKind::Cycle`] for combinational loops, and
/// [`NetlistErrorKind::Syntax`]/[`NetlistErrorKind::Unsupported`] for
/// the rest.
pub fn parse_blif(text: &str) -> Result<Aig, NetlistError> {
    let lines = logical_lines(text)?;
    if lines.is_empty() {
        return Err(err(NetlistErrorKind::Truncated, 0, "empty file"));
    }

    let mut model_seen = false;
    let mut end_seen = false;
    let mut inputs: Vec<(usize, &str)> = Vec::new();
    let mut outputs: Vec<(usize, &str)> = Vec::new();
    let mut defs: Vec<NamesDef<'_>> = Vec::new();

    let mut i = 0usize;
    while i < lines.len() {
        let line = &lines[i];
        let head = line.tokens[0];
        if !head.starts_with('.') {
            return Err(err(
                NetlistErrorKind::Syntax,
                line.line,
                format!("cover row {head:?} outside a .names block"),
            ));
        }
        match head {
            ".model" => {
                if model_seen {
                    return Err(err(
                        NetlistErrorKind::Unsupported,
                        line.line,
                        "multiple .model sections (hierarchy is not supported)",
                    ));
                }
                model_seen = true;
                i += 1;
            }
            ".inputs" => {
                inputs.extend(line.tokens[1..].iter().map(|t| (line.line, *t)));
                i += 1;
            }
            ".outputs" => {
                outputs.extend(line.tokens[1..].iter().map(|t| (line.line, *t)));
                i += 1;
            }
            ".latch" => {
                return Err(err(
                    NetlistErrorKind::Latch,
                    line.line,
                    "latches are not supported (combinational subset only)",
                ));
            }
            ".subckt" | ".gate" | ".mlatch" | ".exdc" | ".clock" => {
                return Err(err(
                    NetlistErrorKind::Unsupported,
                    line.line,
                    format!("{head} is not supported (flat combinational subset only)"),
                ));
            }
            ".names" => {
                if line.tokens.len() < 2 {
                    return Err(err(
                        NetlistErrorKind::Arity,
                        line.line,
                        ".names needs at least an output signal",
                    ));
                }
                let sigs = &line.tokens[1..];
                let (cover_inputs, output) = sigs.split_at(sigs.len() - 1);
                let mut def = NamesDef {
                    line: line.line,
                    inputs: cover_inputs.to_vec(),
                    output: output[0],
                    rows: Vec::new(),
                };
                i += 1;
                let mut output_value: Option<bool> = None;
                while i < lines.len() && !lines[i].tokens[0].starts_with('.') {
                    let row = &lines[i];
                    let (plane, out_tok) = match (row.tokens.len(), def.inputs.is_empty()) {
                        (1, true) => ("", row.tokens[0]),
                        (2, false) => (row.tokens[0], row.tokens[1]),
                        _ => {
                            return Err(err(
                                NetlistErrorKind::Arity,
                                row.line,
                                format!(
                                    "cover row has {} fields for {} cover inputs",
                                    row.tokens.len(),
                                    def.inputs.len()
                                ),
                            ));
                        }
                    };
                    if plane.len() != def.inputs.len() {
                        return Err(err(
                            NetlistErrorKind::Arity,
                            row.line,
                            format!(
                                "cover row {plane:?} has {} columns for {} cover inputs",
                                plane.len(),
                                def.inputs.len()
                            ),
                        ));
                    }
                    if let Some(bad) = plane.chars().find(|c| !matches!(c, '0' | '1' | '-')) {
                        return Err(err(
                            NetlistErrorKind::Syntax,
                            row.line,
                            format!("invalid cover character {bad:?} (want 0, 1, or -)"),
                        ));
                    }
                    let value = match out_tok {
                        "1" => true,
                        "0" => false,
                        other => {
                            return Err(err(
                                NetlistErrorKind::Syntax,
                                row.line,
                                format!("cover output must be 0 or 1, got {other:?}"),
                            ));
                        }
                    };
                    if *output_value.get_or_insert(value) != value {
                        return Err(err(
                            NetlistErrorKind::Syntax,
                            row.line,
                            "cover mixes ON-set and OFF-set rows",
                        ));
                    }
                    def.rows.push((plane, value));
                    i += 1;
                }
                defs.push(def);
            }
            ".end" => {
                end_seen = true;
                // Anything after `.end` means this is not the single
                // flat model we support; dropping it silently would
                // analyze (and cache!) the wrong circuit.
                if let Some(extra) = lines.get(i + 1) {
                    let (kind, what) = if extra.tokens[0] == ".model" {
                        (
                            NetlistErrorKind::Unsupported,
                            "a second .model follows .end (hierarchy is not supported)".to_owned(),
                        )
                    } else {
                        (
                            NetlistErrorKind::Syntax,
                            format!("content after .end: {:?}", extra.tokens[0]),
                        )
                    };
                    return Err(err(kind, extra.line, what));
                }
                break;
            }
            other => {
                return Err(err(
                    NetlistErrorKind::Unsupported,
                    line.line,
                    format!("unknown directive {other}"),
                ));
            }
        }
    }
    if !end_seen {
        return Err(err(
            NetlistErrorKind::Truncated,
            lines.last().map(|l| l.line).unwrap_or(0),
            "file ends before .end",
        ));
    }

    // Signal table: inputs first (declaration order fixes ordinals).
    let mut aig = Aig::new();
    let mut signals: HashMap<&str, Lit> = HashMap::new();
    for &(line, name) in &inputs {
        let lit = aig.add_input();
        if signals.insert(name, lit).is_some() {
            return Err(err(
                NetlistErrorKind::Syntax,
                line,
                format!("input {name:?} declared twice"),
            ));
        }
    }
    let mut defined: HashSet<&str> = signals.keys().copied().collect();
    for def in &defs {
        if !defined.insert(def.output) {
            let what = if signals.contains_key(def.output) {
                "redefines input"
            } else {
                "is defined twice"
            };
            return Err(err(
                NetlistErrorKind::Syntax,
                def.line,
                format!("signal {:?} {what}", def.output),
            ));
        }
    }

    // Resolve .names blocks in dependency order (Kahn-style worklist,
    // linear in cover references): order in the file does not matter,
    // only the dependency DAG does. The ready queue is a min-heap on
    // the definition index, so a topologically ordered file — in
    // particular anything `write_blif` produced — is rebuilt in file
    // order, keeping round trips node-for-node exact.
    let mut waiters: HashMap<&str, Vec<usize>> = HashMap::new();
    let mut missing: Vec<usize> = vec![0; defs.len()];
    let mut ready: std::collections::BinaryHeap<std::cmp::Reverse<usize>> =
        std::collections::BinaryHeap::new();
    for (i, def) in defs.iter().enumerate() {
        for name in &def.inputs {
            if !signals.contains_key(name) {
                missing[i] += 1;
                waiters.entry(name).or_default().push(i);
            }
        }
        if missing[i] == 0 {
            ready.push(std::cmp::Reverse(i));
        }
    }
    let mut resolved = 0usize;
    while let Some(std::cmp::Reverse(i)) = ready.pop() {
        let def = &defs[i];
        let lit = build_sop(&mut aig, def, &signals);
        signals.insert(def.output, lit);
        resolved += 1;
        if let Some(blocked) = waiters.remove(def.output) {
            for w in blocked {
                missing[w] -= 1;
                if missing[w] == 0 {
                    ready.push(std::cmp::Reverse(w));
                }
            }
        }
    }
    if resolved < defs.len() {
        // Diagnose across the whole stuck frontier: a signal that is
        // never defined anywhere means an undeclared reference; if
        // every reference has a definition, the blockage is a cycle.
        let stuck = || defs.iter().filter(|def| !signals.contains_key(def.output));
        for def in stuck() {
            if let Some(ghost) = def.inputs.iter().find(|name| !defined.contains(**name)) {
                return Err(err(
                    NetlistErrorKind::Undeclared,
                    def.line,
                    format!("signal {ghost:?} used by {:?} is never defined", def.output),
                ));
            }
        }
        let def = stuck().next().expect("resolved < defs.len()");
        return Err(err(
            NetlistErrorKind::Cycle,
            def.line,
            format!("combinational cycle through {:?}", def.output),
        ));
    }

    for &(line, name) in &outputs {
        let lit = signals.get(name).copied().ok_or_else(|| {
            err(
                NetlistErrorKind::Undeclared,
                line,
                format!("output {name:?} is never defined"),
            )
        })?;
        aig.add_output(name, lit);
    }
    Ok(aig)
}

/// Lowers one resolved SOP cover into the AIG.
fn build_sop(aig: &mut Aig, def: &NamesDef<'_>, signals: &HashMap<&str, Lit>) -> Lit {
    let ins: Vec<Lit> = def.inputs.iter().map(|name| signals[name]).collect();
    let mut terms = Vec::with_capacity(def.rows.len());
    let mut on_set = true;
    for (plane, value) in &def.rows {
        on_set = *value;
        let mut product = Lit::TRUE;
        for (ch, &lit) in plane.chars().zip(&ins) {
            match ch {
                '1' => product = aig.and(product, lit),
                '0' => product = aig.and(product, !lit),
                _ => {}
            }
        }
        terms.push(product);
    }
    let sum = aig.or_all(terms);
    // An empty cover is constant 0; an OFF-set cover complements.
    if on_set {
        sum
    } else {
        !sum
    }
}

/// Serializes an AIG as a flat combinational BLIF model.
///
/// Inputs are named `i0, i1, …` in ordinal order; AND gates become
/// two-input `.names` covers named `n<var>` in topological order;
/// outputs become buffer covers carrying their (sanitized, deduplicated)
/// names. Gates unreachable from the outputs are still emitted, so the
/// round trip preserves the node table exactly.
pub fn write_blif(aig: &Aig) -> String {
    let mut used: HashSet<String> = HashSet::new();
    let mut net: Vec<String> = vec![String::new(); aig.num_nodes()];
    for (ordinal, var) in aig.inputs().iter().enumerate() {
        net[var.index()] = sanitize_name(&format!("i{ordinal}"), &mut used);
    }
    for var in aig.and_vars() {
        net[var.index()] = sanitize_name(&format!("n{}", var.0), &mut used);
    }
    let out_names: Vec<String> = aig
        .outputs()
        .iter()
        .map(|(name, _)| sanitize_name(name, &mut used))
        .collect();

    let mut s = String::from(".model boole\n.inputs");
    for var in aig.inputs() {
        s.push(' ');
        s.push_str(&net[var.index()]);
    }
    s.push_str("\n.outputs");
    for name in &out_names {
        s.push(' ');
        s.push_str(name);
    }
    s.push('\n');
    for var in aig.and_vars() {
        if let crate::Node::And(a, b) = aig.node(var) {
            s.push_str(&format!(
                ".names {} {} {}\n{}{} 1\n",
                net[a.var().index()],
                net[b.var().index()],
                net[var.index()],
                if a.is_complemented() { '0' } else { '1' },
                if b.is_complemented() { '0' } else { '1' },
            ));
        }
    }
    for ((_, lit), name) in aig.outputs().iter().zip(&out_names) {
        if lit.is_const() {
            // `.names x` with a bare `1` row is constant one; with no
            // rows, constant zero.
            s.push_str(&format!(".names {name}\n"));
            if lit.is_complemented() {
                s.push_str("1\n");
            }
        } else {
            s.push_str(&format!(
                ".names {} {name}\n{} 1\n",
                net[lit.var().index()],
                if lit.is_complemented() { '0' } else { '1' },
            ));
        }
    }
    s.push_str(".end\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::exhaustive_equiv_check;

    fn full_adder_aig() -> Aig {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let c = aig.add_input();
        let (s, co) = crate::gen::full_adder(&mut aig, a, b, c);
        aig.add_output("sum", s);
        aig.add_output("carry", co);
        aig
    }

    #[test]
    fn roundtrip_preserves_structure_exactly() {
        let aig = full_adder_aig();
        let text = write_blif(&aig);
        let parsed = parse_blif(&text).unwrap();
        assert_eq!(parsed.nodes(), aig.nodes());
        assert_eq!(parsed.inputs(), aig.inputs());
        assert_eq!(
            parsed.outputs().iter().map(|(_, l)| *l).collect::<Vec<_>>(),
            aig.outputs().iter().map(|(_, l)| *l).collect::<Vec<_>>()
        );
        assert!(exhaustive_equiv_check(&aig, &parsed));
    }

    #[test]
    fn parses_sop_with_dont_cares() {
        // y = a XOR b via ON-set minterms; z = NOT(a OR b) via OFF-set.
        let text = "\
.model t
.inputs a b
.outputs y z
.names a b y
10 1
01 1
.names a b z
1- 0
-1 0
.end
";
        let aig = parse_blif(text).unwrap();
        let mut expect = Aig::new();
        let a = expect.add_input();
        let b = expect.add_input();
        let y = expect.xor(a, b);
        let z = expect.or(a, b);
        expect.add_output("y", y);
        expect.add_output("z", !z);
        assert!(exhaustive_equiv_check(&aig, &expect));
    }

    #[test]
    fn constants_and_passthrough() {
        let text = "\
.model t
.inputs a
.outputs one zero pass inv
.names one
1
.names zero
.names a pass
1 1
.names a inv
0 1
.end
";
        let aig = parse_blif(text).unwrap();
        let vals = crate::sim::simulate_values(&aig, &[true]);
        assert_eq!(vals, vec![true, false, true, false]);
        let vals = crate::sim::simulate_values(&aig, &[false]);
        assert_eq!(vals, vec![true, false, false, true]);
    }

    #[test]
    fn out_of_order_definitions_resolve() {
        let text = "\
.model t
.inputs a b c
.outputs y
.names t1 c y
11 1
.names a b t1
11 1
.end
";
        let aig = parse_blif(text).unwrap();
        let mut expect = Aig::new();
        let ins = expect.add_inputs(3);
        let t = expect.and(ins[0], ins[1]);
        let y = expect.and(t, ins[2]);
        expect.add_output("y", y);
        assert!(exhaustive_equiv_check(&aig, &expect));
    }

    #[test]
    fn continuations_and_comments() {
        let text = "\
# a comment
.model t
.inputs a \\
        b
.outputs y   # trailing comment
.names a b y
11 1
.end
";
        let aig = parse_blif(text).unwrap();
        assert_eq!(aig.num_inputs(), 2);
        assert_eq!(aig.num_ands(), 1);
    }

    #[test]
    fn latch_is_a_typed_error() {
        let text = ".model t\n.inputs a\n.outputs q\n.latch a q re clk 0\n.end\n";
        let e = parse_blif(text).unwrap_err();
        assert_eq!(e.kind, NetlistErrorKind::Latch);
    }

    #[test]
    fn truncation_undeclared_arity_cycle_are_typed() {
        // Missing .end
        let e = parse_blif(".model t\n.inputs a\n.outputs a\n").unwrap_err();
        assert_eq!(e.kind, NetlistErrorKind::Truncated);
        // Continuation at EOF
        let e = parse_blif(".model t\n.inputs a \\").unwrap_err();
        assert_eq!(e.kind, NetlistErrorKind::Truncated);
        // Undeclared cover input
        let e = parse_blif(".model t\n.inputs a\n.outputs y\n.names a ghost y\n11 1\n.end\n")
            .unwrap_err();
        assert_eq!(e.kind, NetlistErrorKind::Undeclared);
        // Undeclared output
        let e = parse_blif(".model t\n.inputs a\n.outputs ghost\n.end\n").unwrap_err();
        assert_eq!(e.kind, NetlistErrorKind::Undeclared);
        // Arity mismatch in a cover row
        let e = parse_blif(".model t\n.inputs a b\n.outputs y\n.names a b y\n111 1\n.end\n")
            .unwrap_err();
        assert_eq!(e.kind, NetlistErrorKind::Arity);
        // Combinational cycle
        let e = parse_blif(
            ".model t\n.inputs a\n.outputs y\n.names y a x\n11 1\n.names x a y\n11 1\n.end\n",
        )
        .unwrap_err();
        assert_eq!(e.kind, NetlistErrorKind::Cycle);
        // Hierarchy is unsupported, not a panic
        let e = parse_blif(".model t\n.subckt child a=b\n.end\n").unwrap_err();
        assert_eq!(e.kind, NetlistErrorKind::Unsupported);
    }

    #[test]
    fn acyclic_netlist_with_undeclared_upstream_signal_is_not_a_cycle() {
        // `y`'s cover is stuck only because `x`'s cover is stuck on the
        // undefined `ghost`; the diagnosis must scan past `y` and name
        // the real cause.
        let text = "\
.model t
.inputs a
.outputs y
.names x a y
11 1
.names ghost a x
11 1
.end
";
        let e = parse_blif(text).unwrap_err();
        assert_eq!(e.kind, NetlistErrorKind::Undeclared, "{e}");
        assert!(e.message.contains("\"ghost\""), "{e}");
    }

    #[test]
    fn deep_reverse_ordered_chain_parses_quickly() {
        // A 4k-deep dependency chain written bottom-up: the worklist
        // resolver handles this linearly where a retain-until-fixpoint
        // loop would go quadratic.
        let n = 4000;
        let mut text = String::from(".model chain\n.inputs a\n.outputs y\n");
        text.push_str(&format!(".names t{n} y\n1 1\n"));
        for i in (1..=n).rev() {
            let prev = if i == 1 {
                "a".to_owned()
            } else {
                format!("t{}", i - 1)
            };
            text.push_str(&format!(".names {prev} a t{i}\n11 1\n"));
        }
        text.push_str(".end\n");
        let aig = parse_blif(&text).unwrap();
        assert_eq!(aig.num_inputs(), 1);
        assert_eq!(aig.num_outputs(), 1);
    }

    #[test]
    fn content_after_end_is_rejected_not_silently_dropped() {
        // Hierarchical layout with the sub-model first: must be a
        // typed error, not a parse of the wrong (first) model.
        let two_models =
            ".model a\n.inputs x\n.outputs x\n.end\n.model b\n.inputs y\n.outputs y\n.end\n";
        let e = parse_blif(two_models).unwrap_err();
        assert_eq!(e.kind, NetlistErrorKind::Unsupported, "{e}");
        let trailing = ".model a\n.inputs x\n.outputs x\n.end\n.inputs z\n";
        let e = parse_blif(trailing).unwrap_err();
        assert_eq!(e.kind, NetlistErrorKind::Syntax, "{e}");
    }

    #[test]
    fn redefinition_is_rejected() {
        let e = parse_blif(
            ".model t\n.inputs a b\n.outputs y\n.names a y\n1 1\n.names b y\n1 1\n.end\n",
        )
        .unwrap_err();
        assert_eq!(e.kind, NetlistErrorKind::Syntax);
        let e = parse_blif(".model t\n.inputs a\n.outputs a\n.names a a\n1 1\n.end\n").unwrap_err();
        assert_eq!(e.kind, NetlistErrorKind::Syntax);
    }
}
