//! Format-agnostic netlist ingestion: the [`Netlist`] frontend trait,
//! the shared [`NetlistError`] type, and the [`read_netlist`]
//! dispatcher that picks a frontend from a file extension.
//!
//! Four frontends are registered ([`FRONTENDS`]):
//!
//! | extension | format | read | write |
//! |---|---|---|---|
//! | `.aag` | ASCII AIGER | ✓ | ✓ |
//! | `.aig` | binary AIGER | ✓ | ✓ |
//! | `.blif` | Berkeley Logic Interchange Format (combinational subset) | ✓ | ✓ |
//! | `.v` | structural Verilog (gate-primitive subset) | ✓ | ✓ |
//!
//! All frontends parse into the same [`Aig`], so everything downstream
//! (simulation, saturation, fingerprinting) is source-format agnostic:
//! isomorphic netlists produce identical structures no matter which
//! format delivered them.

use std::collections::HashSet;
use std::fmt;
use std::path::Path;

use crate::Aig;

/// What went wrong while reading or writing a netlist file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetlistErrorKind {
    /// The file could not be read or written.
    Io,
    /// No frontend claims the file's extension.
    UnknownFormat,
    /// Malformed syntax (bad token, bad directive, redefinition).
    Syntax,
    /// The file ends before the netlist is complete.
    Truncated,
    /// A referenced signal is never declared or never driven.
    Undeclared,
    /// The netlist contains latches (only combinational logic is
    /// supported).
    Latch,
    /// A gate or cover row has the wrong number of operands.
    Arity,
    /// The combinational logic contains a cycle.
    Cycle,
    /// A construct outside the supported subset.
    Unsupported,
}

impl NetlistErrorKind {
    /// Stable lowercase name for displays and JSON.
    pub fn name(self) -> &'static str {
        match self {
            NetlistErrorKind::Io => "io",
            NetlistErrorKind::UnknownFormat => "unknown-format",
            NetlistErrorKind::Syntax => "syntax",
            NetlistErrorKind::Truncated => "truncated",
            NetlistErrorKind::Undeclared => "undeclared",
            NetlistErrorKind::Latch => "latch",
            NetlistErrorKind::Arity => "arity",
            NetlistErrorKind::Cycle => "cycle",
            NetlistErrorKind::Unsupported => "unsupported",
        }
    }
}

/// A typed parse/IO error shared by every netlist frontend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetlistError {
    /// Which frontend produced the error (`"blif"`, `"verilog"`, …).
    pub format: &'static str,
    /// The error category (stable across message rewording).
    pub kind: NetlistErrorKind,
    /// 1-based source line, or 0 when no line applies.
    pub line: usize,
    /// Human-readable detail.
    pub message: String,
}

impl NetlistError {
    /// Creates an error with a source line.
    pub fn at(
        format: &'static str,
        kind: NetlistErrorKind,
        line: usize,
        message: impl Into<String>,
    ) -> Self {
        NetlistError {
            format,
            kind,
            line,
            message: message.into(),
        }
    }

    /// Creates an error with no meaningful source line.
    pub fn new(format: &'static str, kind: NetlistErrorKind, message: impl Into<String>) -> Self {
        Self::at(format, kind, 0, message)
    }
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(
                f,
                "{} error ({}) on line {}: {}",
                self.format,
                self.kind.name(),
                self.line,
                self.message
            )
        } else {
            write!(
                f,
                "{} error ({}): {}",
                self.format,
                self.kind.name(),
                self.message
            )
        }
    }
}

impl std::error::Error for NetlistError {}

/// A netlist file-format frontend: parse bytes into an [`Aig`] and
/// serialize an [`Aig`] back out.
///
/// Implementations are stateless unit structs registered in
/// [`FRONTENDS`]; dispatch is by file extension via
/// [`frontend_for_path`].
pub trait Netlist {
    /// Short lowercase format name (`"blif"`, `"verilog"`, …).
    fn format_name(&self) -> &'static str;

    /// File extensions (without the dot) this frontend claims.
    fn extensions(&self) -> &'static [&'static str];

    /// Parses file contents into an AIG.
    fn parse(&self, bytes: &[u8]) -> Result<Aig, NetlistError>;

    /// Serializes an AIG into this format.
    fn write(&self, aig: &Aig) -> Vec<u8>;
}

/// The ASCII AIGER (`.aag`) frontend.
pub struct AagFormat;

impl Netlist for AagFormat {
    fn format_name(&self) -> &'static str {
        "aag"
    }
    fn extensions(&self) -> &'static [&'static str] {
        &["aag"]
    }
    fn parse(&self, bytes: &[u8]) -> Result<Aig, NetlistError> {
        let text = std::str::from_utf8(bytes)
            .map_err(|_| NetlistError::new("aag", NetlistErrorKind::Syntax, "file is not UTF-8"))?;
        crate::aiger::from_aag(text).map_err(aiger_error)
    }
    fn write(&self, aig: &Aig) -> Vec<u8> {
        crate::aiger::to_aag(aig).into_bytes()
    }
}

/// The binary AIGER (`.aig`) frontend.
pub struct AigerBinaryFormat;

impl Netlist for AigerBinaryFormat {
    fn format_name(&self) -> &'static str {
        "aig"
    }
    fn extensions(&self) -> &'static [&'static str] {
        &["aig"]
    }
    fn parse(&self, bytes: &[u8]) -> Result<Aig, NetlistError> {
        crate::aiger::from_aig_binary(bytes).map_err(aiger_error)
    }
    fn write(&self, aig: &Aig) -> Vec<u8> {
        crate::aiger::to_aig_binary(aig)
    }
}

/// The BLIF (`.blif`) frontend; see [`crate::blif`].
pub struct BlifFormat;

impl Netlist for BlifFormat {
    fn format_name(&self) -> &'static str {
        "blif"
    }
    fn extensions(&self) -> &'static [&'static str] {
        &["blif"]
    }
    fn parse(&self, bytes: &[u8]) -> Result<Aig, NetlistError> {
        let text = std::str::from_utf8(bytes).map_err(|_| {
            NetlistError::new("blif", NetlistErrorKind::Syntax, "file is not UTF-8")
        })?;
        crate::blif::parse_blif(text)
    }
    fn write(&self, aig: &Aig) -> Vec<u8> {
        crate::blif::write_blif(aig).into_bytes()
    }
}

/// The structural-Verilog (`.v`) frontend; see [`crate::verilog`].
pub struct VerilogFormat;

impl Netlist for VerilogFormat {
    fn format_name(&self) -> &'static str {
        "verilog"
    }
    fn extensions(&self) -> &'static [&'static str] {
        &["v"]
    }
    fn parse(&self, bytes: &[u8]) -> Result<Aig, NetlistError> {
        let text = std::str::from_utf8(bytes).map_err(|_| {
            NetlistError::new("verilog", NetlistErrorKind::Syntax, "file is not UTF-8")
        })?;
        crate::verilog::parse_verilog(text)
    }
    fn write(&self, aig: &Aig) -> Vec<u8> {
        crate::verilog::write_verilog(aig).into_bytes()
    }
}

fn aiger_error(e: crate::aiger::ParseAigerError) -> NetlistError {
    let message = e.to_string();
    let kind = if message.contains("latch") {
        NetlistErrorKind::Latch
    } else if message.contains("EOF") || message.contains("truncated") {
        NetlistErrorKind::Truncated
    } else {
        NetlistErrorKind::Syntax
    };
    NetlistError::new("aiger", kind, message)
}

/// Every registered frontend, in dispatch order.
pub static FRONTENDS: [&(dyn Netlist + Sync); 4] =
    [&AagFormat, &AigerBinaryFormat, &BlifFormat, &VerilogFormat];

/// The frontend claiming `ext` (without the dot, case-insensitive).
pub fn frontend_for_extension(ext: &str) -> Option<&'static (dyn Netlist + Sync)> {
    let ext = ext.to_ascii_lowercase();
    FRONTENDS
        .iter()
        .copied()
        .find(|f| f.extensions().contains(&ext.as_str()))
}

/// Whether some frontend claims `ext` (without the dot).
pub fn is_supported_extension(ext: &str) -> bool {
    frontend_for_extension(ext).is_some()
}

/// The frontend for `path`, chosen by extension.
///
/// # Errors
///
/// Returns [`NetlistErrorKind::UnknownFormat`] when no frontend claims
/// the extension (or the path has none).
pub fn frontend_for_path(path: &Path) -> Result<&'static (dyn Netlist + Sync), NetlistError> {
    let ext = path
        .extension()
        .and_then(|e| e.to_str())
        .unwrap_or_default();
    frontend_for_extension(ext).ok_or_else(|| {
        let known: Vec<&str> = FRONTENDS
            .iter()
            .flat_map(|f| f.extensions())
            .copied()
            .collect();
        NetlistError::new(
            "netlist",
            NetlistErrorKind::UnknownFormat,
            format!(
                "no frontend for {:?} (supported extensions: {})",
                path.display().to_string(),
                known.join(", ")
            ),
        )
    })
}

/// Reads a netlist file, dispatching on its extension.
///
/// # Errors
///
/// Propagates frontend parse errors; IO failures map to
/// [`NetlistErrorKind::Io`]; unclaimed extensions to
/// [`NetlistErrorKind::UnknownFormat`].
pub fn read_netlist(path: impl AsRef<Path>) -> Result<Aig, NetlistError> {
    let path = path.as_ref();
    let frontend = frontend_for_path(path)?;
    let bytes = std::fs::read(path).map_err(|e| {
        NetlistError::new(
            frontend.format_name(),
            NetlistErrorKind::Io,
            format!("cannot read {}: {e}", path.display()),
        )
    })?;
    frontend.parse(&bytes)
}

/// Writes a netlist file, dispatching on its extension.
///
/// # Errors
///
/// Returns [`NetlistErrorKind::UnknownFormat`] for unclaimed
/// extensions and [`NetlistErrorKind::Io`] for filesystem failures.
pub fn write_netlist(path: impl AsRef<Path>, aig: &Aig) -> Result<(), NetlistError> {
    let path = path.as_ref();
    let frontend = frontend_for_path(path)?;
    let bytes = frontend.write(aig);
    std::fs::write(path, bytes).map_err(|e| {
        NetlistError::new(
            frontend.format_name(),
            NetlistErrorKind::Io,
            format!("cannot write {}: {e}", path.display()),
        )
    })
}

/// Sanitizes `raw` into an identifier (letters, digits, `_`) that is
/// unique within `used`, registering the result. Writers use this so
/// arbitrary output names survive round trips through formats with
/// stricter identifier rules.
pub(crate) fn sanitize_name(raw: &str, used: &mut HashSet<String>) -> String {
    let mut name: String = raw
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if name.is_empty() {
        name.push('s');
    }
    if name.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        name.insert(0, '_');
    }
    if used.contains(&name) {
        let mut i = 2usize;
        while used.contains(&format!("{name}_{i}")) {
            i += 1;
        }
        name = format!("{name}_{i}");
    }
    used.insert(name.clone());
    name
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extension_dispatch() {
        assert!(is_supported_extension("blif"));
        assert!(is_supported_extension("BLIF"));
        assert!(is_supported_extension("v"));
        assert!(is_supported_extension("aag"));
        assert!(is_supported_extension("aig"));
        assert!(!is_supported_extension("vhdl"));
        assert!(!is_supported_extension(""));
        assert_eq!(
            frontend_for_extension("v").unwrap().format_name(),
            "verilog"
        );
    }

    #[test]
    fn unknown_extension_is_typed() {
        for path in ["design.vhdl", "no_extension"] {
            match frontend_for_path(Path::new(path)) {
                Err(e) => assert_eq!(e.kind, NetlistErrorKind::UnknownFormat),
                Ok(f) => panic!("{path}: unexpectedly matched frontend {}", f.format_name()),
            }
        }
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = read_netlist("/nonexistent/never.blif").unwrap_err();
        assert_eq!(err.kind, NetlistErrorKind::Io);
    }

    #[test]
    fn sanitize_dedupes_and_cleans() {
        let mut used = HashSet::new();
        assert_eq!(sanitize_name("sum[0]", &mut used), "sum_0_");
        assert_eq!(sanitize_name("sum[0]", &mut used), "sum_0__2");
        assert_eq!(sanitize_name("3x", &mut used), "_3x");
        assert_eq!(sanitize_name("", &mut used), "s");
    }
}
