//! The core [`Aig`] data structure.

use std::collections::HashMap;
use std::fmt;

/// An AIG variable: an index into the node table.
///
/// Variable 0 is the constant-false node; inputs and AND gates follow.
#[derive(Debug, Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub u32);

impl Var {
    /// The positive-polarity literal of this variable.
    pub fn lit(self) -> Lit {
        Lit(self.0 << 1)
    }

    /// The raw index of this variable.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A literal: a variable with a polarity bit (AIGER encoding —
/// `var * 2 + complement`).
///
/// ```
/// use aig::{Lit, Var};
/// let x = Var(3).lit();
/// assert!(!x.is_complemented());
/// assert!((!x).is_complemented());
/// assert_eq!(!!x, x);
/// assert_eq!(x.var(), Var(3));
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(pub u32);

impl Lit {
    /// The constant-false literal.
    pub const FALSE: Lit = Lit(0);
    /// The constant-true literal.
    pub const TRUE: Lit = Lit(1);

    /// The underlying variable.
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Returns `true` if the literal is complemented.
    pub fn is_complemented(self) -> bool {
        self.0 & 1 == 1
    }

    /// Returns this literal with polarity set by `c`.
    pub fn with_complement(self, c: bool) -> Lit {
        Lit((self.0 & !1) | u32::from(c))
    }

    /// Returns `true` if this is one of the two constant literals.
    pub fn is_const(self) -> bool {
        self.var() == Var(0)
    }

    /// The raw AIGER encoding of this literal.
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl std::ops::BitXor<bool> for Lit {
    type Output = Lit;
    fn bitxor(self, rhs: bool) -> Lit {
        Lit(self.0 ^ u32::from(rhs))
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_complemented() {
            write!(f, "!{}", self.var().0)
        } else {
            write!(f, "{}", self.var().0)
        }
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A node in the AIG.
#[derive(Debug, Copy, Clone, PartialEq, Eq)]
pub enum Node {
    /// The constant-false node (always variable 0).
    Const,
    /// A primary input; the payload is its ordinal among the inputs.
    Input(u32),
    /// A two-input AND gate over two literals.
    And(Lit, Lit),
}

/// A combinational And-Inverter Graph with structural hashing.
///
/// Nodes are stored in topological order by construction: an AND's
/// fanins always precede it. Trivial ANDs are folded (`x & 1 = x`,
/// `x & 0 = 0`, `x & x = x`, `x & !x = 0`) and fanin pairs are
/// canonically ordered, so structurally equal gates are shared.
///
/// ```
/// use aig::Aig;
/// let mut aig = Aig::new();
/// let a = aig.add_input();
/// let b = aig.add_input();
/// let ab1 = aig.and(a, b);
/// let ab2 = aig.and(b, a);
/// assert_eq!(ab1, ab2); // structural hashing
/// aig.add_output("y", ab1);
/// assert_eq!(aig.num_ands(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Aig {
    nodes: Vec<Node>,
    strash: HashMap<(Lit, Lit), Var>,
    inputs: Vec<Var>,
    outputs: Vec<(String, Lit)>,
}

impl Aig {
    /// Creates an empty AIG (just the constant node).
    pub fn new() -> Self {
        Self {
            nodes: vec![Node::Const],
            strash: HashMap::new(),
            inputs: vec![],
            outputs: vec![],
        }
    }

    /// Number of nodes including the constant (AIGER's `M + 1`).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// Number of primary outputs.
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// Number of AND gates.
    pub fn num_ands(&self) -> usize {
        self.nodes.len() - 1 - self.inputs.len()
    }

    /// The node of a variable.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range.
    pub fn node(&self, var: Var) -> Node {
        self.nodes[var.index()]
    }

    /// All nodes in topological order (constant first).
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// The primary input variables, in order.
    pub fn inputs(&self) -> &[Var] {
        &self.inputs
    }

    /// The primary outputs as `(name, literal)` pairs.
    pub fn outputs(&self) -> &[(String, Lit)] {
        &self.outputs
    }

    /// Iterates over the AND-gate variables in topological order.
    pub fn and_vars(&self) -> impl Iterator<Item = Var> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| matches!(n, Node::And(..)))
            .map(|(i, _)| Var(i as u32))
    }

    /// Adds a primary input, returning its (positive) literal.
    pub fn add_input(&mut self) -> Lit {
        let var = Var(self.nodes.len() as u32);
        self.nodes.push(Node::Input(self.inputs.len() as u32));
        self.inputs.push(var);
        var.lit()
    }

    /// Adds `n` primary inputs.
    pub fn add_inputs(&mut self, n: usize) -> Vec<Lit> {
        (0..n).map(|_| self.add_input()).collect()
    }

    /// Registers a named primary output.
    pub fn add_output(&mut self, name: impl Into<String>, lit: Lit) {
        assert!(
            lit.var().index() < self.nodes.len(),
            "output literal out of range"
        );
        self.outputs.push((name.into(), lit));
    }

    /// The AND of two literals, with folding and structural hashing.
    pub fn and(&mut self, a: Lit, b: Lit) -> Lit {
        // Constant and trivial folding.
        if a == Lit::FALSE || b == Lit::FALSE || a == !b {
            return Lit::FALSE;
        }
        if a == Lit::TRUE {
            return b;
        }
        if b == Lit::TRUE || a == b {
            return a;
        }
        let (a, b) = if a.raw() <= b.raw() { (a, b) } else { (b, a) };
        if let Some(&var) = self.strash.get(&(a, b)) {
            return var.lit();
        }
        let var = Var(self.nodes.len() as u32);
        self.nodes.push(Node::And(a, b));
        self.strash.insert((a, b), var);
        var.lit()
    }

    /// The OR of two literals (De Morgan).
    pub fn or(&mut self, a: Lit, b: Lit) -> Lit {
        !self.and(!a, !b)
    }

    /// The XOR of two literals.
    pub fn xor(&mut self, a: Lit, b: Lit) -> Lit {
        // (a | b) & !(a & b)
        let o = self.or(a, b);
        let n = self.and(a, b);
        self.and(o, !n)
    }

    /// The XNOR of two literals.
    pub fn xnor(&mut self, a: Lit, b: Lit) -> Lit {
        !self.xor(a, b)
    }

    /// `sel ? t : e`.
    pub fn mux(&mut self, sel: Lit, t: Lit, e: Lit) -> Lit {
        let st = self.and(sel, t);
        let se = self.and(!sel, e);
        self.or(st, se)
    }

    /// The three-input majority `(a&b) | (a&c) | (b&c)`.
    pub fn maj(&mut self, a: Lit, b: Lit, c: Lit) -> Lit {
        let ab = self.and(a, b);
        let ac = self.and(a, c);
        let bc = self.and(b, c);
        let o = self.or(ab, ac);
        self.or(o, bc)
    }

    /// The three-input XOR.
    pub fn xor3(&mut self, a: Lit, b: Lit, c: Lit) -> Lit {
        let ab = self.xor(a, b);
        self.xor(ab, c)
    }

    /// AND over an iterator of literals (true for empty input).
    pub fn and_all<I: IntoIterator<Item = Lit>>(&mut self, lits: I) -> Lit {
        lits.into_iter().fold(Lit::TRUE, |acc, l| self.and(acc, l))
    }

    /// OR over an iterator of literals (false for empty input).
    pub fn or_all<I: IntoIterator<Item = Lit>>(&mut self, lits: I) -> Lit {
        lits.into_iter().fold(Lit::FALSE, |acc, l| self.or(acc, l))
    }

    /// Computes the fanout count of every variable (outputs count once
    /// per reference).
    pub fn fanout_counts(&self) -> Vec<u32> {
        let mut counts = vec![0u32; self.nodes.len()];
        for node in &self.nodes {
            if let Node::And(a, b) = node {
                counts[a.var().index()] += 1;
                counts[b.var().index()] += 1;
            }
        }
        for (_, lit) in &self.outputs {
            counts[lit.var().index()] += 1;
        }
        counts
    }

    /// Logic level (depth) of each variable; inputs and the constant are
    /// level 0.
    pub fn levels(&self) -> Vec<u32> {
        let mut levels = vec![0u32; self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            if let Node::And(a, b) = node {
                levels[i] = 1 + levels[a.var().index()].max(levels[b.var().index()]);
            }
        }
        levels
    }

    /// The maximum logic level over all outputs.
    pub fn depth(&self) -> u32 {
        let levels = self.levels();
        self.outputs
            .iter()
            .map(|(_, l)| levels[l.var().index()])
            .max()
            .unwrap_or(0)
    }

    /// Returns a copy containing only logic reachable from the outputs,
    /// with inputs preserved (dead AND gates removed).
    pub fn trim(&self) -> Aig {
        let mut reachable = vec![false; self.nodes.len()];
        let mut stack: Vec<Var> = self.outputs.iter().map(|(_, l)| l.var()).collect();
        while let Some(v) = stack.pop() {
            if reachable[v.index()] {
                continue;
            }
            reachable[v.index()] = true;
            if let Node::And(a, b) = self.nodes[v.index()] {
                stack.push(a.var());
                stack.push(b.var());
            }
        }
        let mut new = Aig::new();
        let mut map: Vec<Lit> = vec![Lit::FALSE; self.nodes.len()];
        for &input in &self.inputs {
            map[input.index()] = new.add_input();
        }
        for (i, node) in self.nodes.iter().enumerate() {
            if let Node::And(a, b) = node {
                if reachable[i] {
                    let fa = map[a.var().index()] ^ a.is_complemented();
                    let fb = map[b.var().index()] ^ b.is_complemented();
                    map[i] = new.and(fa, fb);
                }
            }
        }
        for (name, lit) in &self.outputs {
            let l = map[lit.var().index()] ^ lit.is_complemented();
            new.add_output(name.clone(), l);
        }
        new
    }

    /// Maps a literal of `self` through a translation table produced
    /// while rebuilding (`table[var] = new positive literal`).
    pub fn translate(table: &[Lit], lit: Lit) -> Lit {
        table[lit.var().index()] ^ lit.is_complemented()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lit_encoding() {
        assert_eq!(Lit::FALSE, !Lit::TRUE);
        assert!(Lit::TRUE.is_complemented());
        assert!(Lit::FALSE.is_const());
        let v = Var(5);
        assert_eq!(v.lit().raw(), 10);
        assert_eq!((!v.lit()).raw(), 11);
        assert_eq!(v.lit().with_complement(true), !v.lit());
    }

    #[test]
    fn and_folds_constants() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        assert_eq!(aig.and(a, Lit::FALSE), Lit::FALSE);
        assert_eq!(aig.and(a, Lit::TRUE), a);
        assert_eq!(aig.and(a, a), a);
        assert_eq!(aig.and(a, !a), Lit::FALSE);
        assert_eq!(aig.num_ands(), 0);
    }

    #[test]
    fn strash_shares_structure() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let c = aig.add_input();
        let x = aig.and(a, b);
        let y = aig.and(b, a);
        assert_eq!(x, y);
        let z1 = aig.and(x, c);
        let z2 = aig.and(c, y);
        assert_eq!(z1, z2);
        assert_eq!(aig.num_ands(), 2);
    }

    #[test]
    fn derived_gates_have_expected_size() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        aig.xor(a, b);
        assert_eq!(aig.num_ands(), 3);
        let mut aig2 = Aig::new();
        let a = aig2.add_input();
        let b = aig2.add_input();
        let c = aig2.add_input();
        aig2.maj(a, b, c);
        assert_eq!(aig2.num_ands(), 5);
    }

    #[test]
    fn levels_and_depth() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let c = aig.add_input();
        let ab = aig.and(a, b);
        let abc = aig.and(ab, c);
        aig.add_output("y", abc);
        assert_eq!(aig.depth(), 2);
        let levels = aig.levels();
        assert_eq!(levels[ab.var().index()], 1);
        assert_eq!(levels[abc.var().index()], 2);
    }

    #[test]
    fn trim_removes_dead_logic() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let keep = aig.and(a, b);
        let _dead = aig.or(a, b);
        aig.add_output("y", keep);
        assert_eq!(aig.num_ands(), 2);
        let trimmed = aig.trim();
        assert_eq!(trimmed.num_ands(), 1);
        assert_eq!(trimmed.num_inputs(), 2);
        assert_eq!(trimmed.num_outputs(), 1);
    }

    #[test]
    fn fanout_counts_include_outputs() {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let x = aig.and(a, b);
        aig.add_output("y1", x);
        aig.add_output("y2", !x);
        let counts = aig.fanout_counts();
        assert_eq!(counts[x.var().index()], 2);
        assert_eq!(counts[a.var().index()], 1);
    }
}
