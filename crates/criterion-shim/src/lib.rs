//! A tiny, dependency-free stand-in for the subset of the `criterion`
//! API used by `crates/bench/benches`.
//!
//! The build environment has no network access, so the real crates.io
//! `criterion` cannot be vendored. This shim keeps `cargo bench`
//! compiling and producing *useful* (median-of-N wall-clock) numbers
//! with the same bench source code, so the benches can be pointed at
//! the real criterion later by swapping one `[dev-dependencies]` line.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value sink preventing the optimizer from deleting a benchmark
/// body (same contract as `criterion::black_box`).
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// A benchmark id combining a function name and a parameter, printed as
/// `name/param` like criterion does.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id `name/param`.
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), param),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    results: Vec<Duration>,
}

impl Bencher {
    /// Runs `f` repeatedly, recording one wall-clock sample per run.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            self.results.push(start.elapsed());
        }
    }

    /// Like [`Bencher::iter`], but runs `setup` outside the timed
    /// region and passes its value to the routine.
    pub fn iter_with_setup<I, O, S, F>(&mut self, mut setup: S, mut f: F)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(f(input));
            self.results.push(start.elapsed());
        }
    }
}

fn run_one(label: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples,
        results: Vec::new(),
    };
    f(&mut b);
    if b.results.is_empty() {
        println!("{label:<40} (no samples)");
        return;
    }
    b.results.sort_unstable();
    let median = b.results[b.results.len() / 2];
    let min = b.results[0];
    let max = b.results[b.results.len() - 1];
    println!(
        "{label:<40} median {median:>12?}  [min {min:?}, max {max:?}, n={}]",
        b.results.len()
    );
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the target measurement time (accepted for API parity;
    /// the shim samples a fixed count instead).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.sample_size, &mut f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Ends the group (no-op; reports are printed eagerly).
    pub fn finish(&mut self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Criterion {
    fn sample_size_or_default(&self) -> usize {
        if self.default_sample_size == 0 {
            10
        } else {
            self.default_sample_size
        }
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size_or_default();
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            _criterion: self,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = self.sample_size_or_default();
        run_one(&format!("{id}"), samples, &mut f);
        self
    }
}

/// Declares a group of benchmark functions (mirrors
/// `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark entry point (mirrors
/// `criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_records() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        let mut runs = 0usize;
        g.bench_function("count", |b| b.iter(|| runs += 1));
        g.finish();
        assert_eq!(runs, 3);
    }

    #[test]
    fn benchmark_id_formats_like_criterion() {
        assert_eq!(BenchmarkId::new("satur", 4).to_string(), "satur/4");
    }
}
