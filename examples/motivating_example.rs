//! The paper's motivating example (Figure 1): a 3-bit CSA multiplier
//! after ASAP7-style technology mapping. Cut enumeration (ABC) loses
//! most full adders; BoolE reconstructs them by equality saturation.
//!
//! ```text
//! cargo run --release --example motivating_example
//! ```

use boole::{BoolE, BooleParams};

fn main() {
    // The pre-mapping 3-bit CSA multiplier has 3 FAs ((3−1)²−1).
    let pre = aig::gen::csa_multiplier(3);
    let pre_report = baselines::detect_blocks_atree(&pre);
    println!(
        "pre-mapping : {} AND gates, ABC finds {} NPN FAs ({} exact)",
        pre.num_ands(),
        pre_report.npn_fa_count(),
        pre_report.exact_fa_count()
    );

    // Technology-map it (Figure 1a).
    let mapped = aig::map::map_round_trip(&pre);
    println!(
        "post-mapping: {} AND gates after ASAP7-like mapping round trip",
        mapped.num_ands()
    );

    // ABC-style cut enumeration on the mapped netlist (Figure 1b/1c).
    let abc = baselines::detect_blocks_atree(&mapped);
    println!(
        "ABC &atree  : {} NPN FAs, {} exact FAs, {} HAs",
        abc.npn_fa_count(),
        abc.exact_fa_count(),
        abc.npn_ha_count()
    );

    // BoolE rewriting + exact extraction (Figure 1d).
    let result = BoolE::new(BooleParams::default()).run(&mapped);
    println!(
        "BoolE       : {} exact FAs reconstructed (runtime {:.3}s)",
        result.exact_fa_count(),
        result.runtime.as_secs_f64()
    );
    for (i, fa) in result.fas.iter().enumerate() {
        println!(
            "  FA {i}: inputs {:?} -> sum {:?} carry {:?}",
            fa.inputs, fa.sum, fa.carry
        );
    }

    assert!(aig::sim::exhaustive_equiv_check(
        &mapped,
        &result.reconstructed
    ));
    println!("reconstructed netlist verified equivalent (exhaustive)");
}
