//! AIGER interoperability: export a benchmark to both AIGER formats,
//! read it back, and run the reasoning flow on the parsed netlist —
//! the way BoolE would consume netlists produced by external tools
//! (ABC, Yosys, aigtoaig).
//!
//! ```text
//! cargo run --release --example aiger_interop -- [--bits 4]
//! ```

use boole::{BoolE, BooleParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = boole_bench::arg_usize("--bits", 4);
    let aig = aig::gen::csa_multiplier(n);

    // ASCII round trip.
    let text = aig::aiger::to_aag(&aig);
    println!(
        "ascii .aag : {} bytes ({} ANDs, header `{}`)",
        text.len(),
        aig.num_ands(),
        text.lines().next().unwrap_or("")
    );
    let from_text = aig::aiger::from_aag(&text)?;

    // Binary round trip.
    let bytes = aig::aiger::to_aig_binary(&aig);
    println!(
        "binary .aig: {} bytes (delta-coded AND section)",
        bytes.len()
    );
    let from_binary = aig::aiger::from_aig_binary(&bytes)?;

    assert!(aig::sim::random_equiv_check(&from_text, &from_binary, 8, 7));
    println!("both parses are functionally equivalent");

    // Reason on the parsed netlist as an external tool's output.
    let result = BoolE::new(BooleParams::default()).run(&from_binary);
    println!(
        "BoolE on parsed netlist: {} exact FAs (upper bound {})",
        result.exact_fa_count(),
        aig::gen::csa_fa_upper_bound(n)
    );
    Ok(())
}
