//! End-to-end formal verification (the paper's Section V-B): verify a
//! logic-optimized multiplier with SCA backward rewriting, with and
//! without BoolE's exact-FA reconstruction.
//!
//! ```text
//! cargo run --release --example multiplier_verification -- [--bits 8]
//! ```

use boole::{BoolE, BooleParams};
use boole_bench::{baseline_blocks, verifier_blocks};
use sca::{verify_multiplier, MulSpec, VerifyParams};

fn main() {
    let n = boole_bench::arg_usize("--bits", 8);
    println!("verifying a dch-optimized {n}-bit CSA multiplier");

    let multiplier = aig::gen::csa_multiplier(n);
    let optimized = aig::opt::dch(&multiplier);
    println!(
        "optimized netlist: {} AND gates (was {})",
        optimized.num_ands(),
        multiplier.num_ands()
    );

    let params = VerifyParams {
        max_terms: 200_000,
        ..VerifyParams::default()
    };

    // Baseline: RevSCA-style verification with its own cut-enumeration
    // block detection on the optimized netlist.
    let report = baselines::detect_blocks_atree(&optimized);
    let blocks = baseline_blocks(&report);
    println!(
        "baseline blocks: {} exact FAs, {} exact HAs",
        blocks.fas.len(),
        blocks.has.len()
    );
    let base = verify_multiplier(&optimized, MulSpec::unsigned(n), &blocks, &params);
    if base.timed_out {
        println!(
            "baseline: TIMEOUT (poly exceeded {} terms; max seen {})",
            params.max_terms, base.max_poly_size
        );
    } else {
        println!(
            "baseline: verified={} max-poly={} time={:.3}s",
            base.verified,
            base.max_poly_size,
            base.runtime.as_secs_f64()
        );
    }

    // BoolE-assisted: reconstruct the adder tree first.
    let result = BoolE::new(BooleParams::default()).run(&optimized);
    let blocks = verifier_blocks(&result, &optimized);
    println!(
        "BoolE blocks: {} exact FAs (upper bound {}), {} exact HAs",
        blocks.fas.len(),
        aig::gen::csa_fa_upper_bound(n),
        blocks.has.len()
    );
    let be = verify_multiplier(&optimized, MulSpec::unsigned(n), &blocks, &params);
    assert!(be.verified, "BoolE-assisted verification failed: {be:?}");
    println!(
        "BoolE-assisted: verified={} max-poly={} time={:.3}s (reasoning {:.3}s)",
        be.verified,
        be.max_poly_size,
        be.runtime.as_secs_f64(),
        result.runtime.as_secs_f64()
    );
}
