//! Quickstart: run BoolE on a small multiplier and inspect the result.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use boole::{BoolE, BooleParams};

fn main() {
    // 1. Generate a 4-bit carry-save array multiplier (8 inputs, 8
    //    outputs, (4−1)²−1 = 8 full adders in its adder tree).
    let multiplier = aig::gen::csa_multiplier(4);
    println!(
        "netlist: {} inputs, {} outputs, {} AND gates",
        multiplier.num_inputs(),
        multiplier.num_outputs(),
        multiplier.num_ands()
    );

    // 2. Run the BoolE pipeline: e-graph construction, two-phase
    //    saturation (R1 then R2), XOR3/MAJ pairing into FA nodes, and
    //    DAG extraction maximizing exact full adders.
    let result = BoolE::new(BooleParams::default()).run(&multiplier);

    println!(
        "saturation: {} e-nodes after R1, {} after R2, {} pruned",
        result.saturation.nodes_after_r1,
        result.saturation.nodes_after_r2,
        result.saturation.pruned
    );
    println!(
        "pairing: {} fa nodes inserted ({} xor3 triples, {} maj triples)",
        result.pairing.fa_inserted, result.pairing.xor3_triples, result.pairing.maj_triples
    );
    println!(
        "exact full adders recovered: {} (upper bound {})",
        result.exact_fa_count(),
        aig::gen::csa_fa_upper_bound(4)
    );

    // 3. The reconstructed netlist is functionally identical.
    assert!(aig::sim::random_equiv_check(
        &multiplier,
        &result.reconstructed,
        8,
        42
    ));
    println!("reconstruction verified equivalent by simulation");

    // 4. Each recovered FA satisfies sum = a^b^c, carry = maj(a,b,c).
    if let Some(fa) = result.fas.first() {
        println!(
            "first FA: inputs {:?} -> sum {:?}, carry {:?}",
            fa.inputs, fa.sum, fa.carry
        );
    }
}
