//! Adder-tree recovery across netlist transformations: compares how
//! much of the adder tree each reasoning tool recovers on pre-mapping,
//! technology-mapped, and dch-optimized netlists — for both CSA and
//! Booth multipliers (the paper's RQ2 in miniature).
//!
//! ```text
//! cargo run --release --example adder_tree_recovery -- [--bits 6]
//! ```

use boole::{BoolE, BooleParams};
use boole_bench::{abc_counts, boole_counts, gamora_counts, prepare, Family, Prep};

fn main() {
    let n = boole_bench::arg_usize("--bits", 6);
    let model = baselines::GamoraModel::default_trained();

    for family in [Family::Csa, Family::Booth] {
        let pre = prepare(family, n, Prep::None);
        let upper = abc_counts(&pre).npn;
        println!(
            "== {} {n}-bit multiplier (adder-tree upper bound: {upper} FAs) ==",
            family.name()
        );
        println!(
            "{:<14} {:>9} {:>12} {:>11} {:>11} {:>13}",
            "netlist", "NPN-ABC", "NPN-Gamora", "NPN-BoolE", "Exact-ABC", "Exact-BoolE"
        );
        for (label, prep) in [
            ("pre-mapping", Prep::None),
            ("tech-mapped", Prep::Mapped),
            ("dch-optimized", Prep::Dch),
        ] {
            let netlist = prepare(family, n, prep);
            let abc = abc_counts(&netlist);
            let gamora = gamora_counts(&netlist, &model);
            let result = BoolE::new(BooleParams::default()).run(&netlist);
            let boole = boole_counts(&result);
            println!(
                "{label:<14} {:>9} {:>12} {:>11} {:>11} {:>13}",
                abc.npn, gamora.npn, boole.npn, abc.exact, boole.exact
            );
        }
        println!();
    }
}
